"""Property-based tests (hypothesis): the heavy correctness artillery.

The central invariant: the out-of-order pipeline — under any scheme,
any configuration, any generated program — produces exactly the
architectural state of the in-order reference interpreter.  On top of
that, scheme-specific invariants (taint soundness, NDA deferral) and
structural invariants (rename consistency) are checked.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import LARGE, MEDIUM, MEGA, SMALL, OoOCore, make_scheme, run_reference
from repro.isa.interp import evaluate_alu, to_signed64, to_unsigned64
from repro.isa.instructions import Opcode
from repro.workloads.generator import WorkloadProfile, generate_program

_SLOW = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _profile_strategy():
    return st.builds(
        WorkloadProfile,
        name=st.just("prop"),
        iterations=st.integers(min_value=2, max_value=8),
        body_templates=st.integers(min_value=3, max_value=9),
        body_blocks=st.integers(min_value=1, max_value=2),
        working_set_words=st.sampled_from([64, 256, 1024]),
        ring_words=st.sampled_from([16, 64]),
        scratch_words=st.sampled_from([8, 16]),
        branch_entropy=st.floats(min_value=0.0, max_value=1.0),
        branch_on_load=st.floats(min_value=0.0, max_value=1.0),
        chain_length=st.integers(min_value=1, max_value=6),
        reload_match=st.floats(min_value=0.0, max_value=1.0),
        w_chase_load=st.floats(min_value=0.0, max_value=2.0),
        w_store=st.floats(min_value=0.0, max_value=3.0),
        w_reload=st.floats(min_value=0.0, max_value=2.0),
        w_branch=st.floats(min_value=0.0, max_value=3.0),
        w_div=st.floats(min_value=0.0, max_value=0.4),
    )


@settings(max_examples=15, **_SLOW)
@given(profile=_profile_strategy(), seed=st.integers(0, 2**32 - 1),
       scheme=st.sampled_from(["baseline", "stt-rename", "stt-issue", "nda"]),
       config=st.sampled_from([SMALL, MEGA]))
def test_pipeline_matches_reference(profile, seed, scheme, config):
    program = generate_program(profile, seed=seed)
    reference = run_reference(program, max_steps=2_000_000)
    core = OoOCore(program, config=config, scheme=make_scheme(scheme))
    result = core.run()
    for reg in range(32):
        assert result.regs[reg] == reference.state.read_reg(reg), (
            "x%d diverged under %s/%s" % (reg, config.name, scheme)
        )
    ref_memory = {a: v for a, v in reference.state.memory.items() if v != 0}
    got_memory = {a: v for a, v in result.memory.items() if v != 0}
    assert got_memory == ref_memory
    assert result.stats.committed_instructions == reference.instructions_retired


@settings(max_examples=15, **_SLOW)
@given(profile=_profile_strategy(), seed=st.integers(0, 2**32 - 1))
def test_schemes_commit_identical_instruction_counts(profile, seed):
    """Schemes change timing, never the committed instruction stream."""
    program = generate_program(profile, seed=seed)
    counts = set()
    for scheme in ("baseline", "stt-rename", "stt-issue", "nda"):
        core = OoOCore(program, config=MEDIUM, scheme=make_scheme(scheme))
        counts.add(core.run().stats.committed_instructions)
    assert len(counts) == 1


@settings(max_examples=10, **_SLOW)
@given(profile=_profile_strategy(), seed=st.integers(0, 2**32 - 1))
def test_rename_invariants_hold_after_run(profile, seed):
    program = generate_program(profile, seed=seed)
    core = OoOCore(program, config=LARGE, scheme=make_scheme("stt-rename"))
    core.run()
    core.rename.check_invariants()


@settings(max_examples=10, **_SLOW)
@given(profile=_profile_strategy(), seed=st.integers(0, 2**32 - 1))
def test_scheme_slowdowns_are_bounded(profile, seed):
    """Schemes change cycle counts within sane bounds.  (A strict
    "baseline is always fastest" is NOT an invariant: the paper's own
    Figure 6 shows schemes occasionally beating baseline when flushes
    reshape cache state — exchange2's NDA result.)"""
    program = generate_program(profile, seed=seed)
    base = OoOCore(program, config=MEGA).run().stats.cycles
    for scheme in ("stt-rename", "stt-issue", "nda"):
        cycles = OoOCore(program, config=MEGA,
                         scheme=make_scheme(scheme)).run().stats.cycles
        assert base * 0.5 <= cycles <= base * 20


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
def test_alu_results_stay_in_64_bits(a, b):
    for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR,
               Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.DIV, Opcode.REM):
        result = evaluate_alu(op, a, b, 0)
        assert -(2**63) <= result <= 2**63 - 1


@settings(max_examples=40, deadline=None)
@given(value=st.integers(-(2**70), 2**70))
def test_signed_unsigned_round_trip(value):
    assert to_signed64(to_unsigned64(value)) == to_signed64(value)
    assert 0 <= to_unsigned64(value) < 2**64


@settings(max_examples=25, deadline=None)
@given(seqs=st.lists(st.integers(0, 1000), min_size=1, max_size=30, unique=True))
def test_shadow_tracker_vp_is_min(seqs):
    from repro.core.shadows import C_SHADOW, ShadowTracker

    tracker = ShadowTracker()
    for seq in seqs:
        tracker.cast(seq, C_SHADOW)
    assert tracker.visibility_point() == min(seqs)
    tracker.resolve(min(seqs))
    rest = [s for s in seqs if s != min(seqs)]
    assert tracker.visibility_point() == (min(rest) if rest else None)


@settings(max_examples=25, deadline=None)
@given(
    sets=st.integers(1, 6).map(lambda p: 2**p),
    ways=st.integers(1, 8),
    addresses=st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
)
def test_cache_never_exceeds_capacity(sets, ways, addresses):
    from repro.memsys.cache import CacheModel

    cache = CacheModel(num_sets=sets, ways=ways, line_words=8)
    for address in addresses:
        cache.lookup(address)
        cache.insert(address)
    assert len(cache.resident_lines()) <= sets * ways
    # Only the most recent insertion is guaranteed resident (older
    # addresses may have been evicted by set conflicts since).
    assert cache.contains(addresses[-1])
