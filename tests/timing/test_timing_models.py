"""Tests for the synthesis-substitute timing, area, and power models."""

import pytest

from repro.pipeline.config import LARGE, MEDIUM, MEGA, SMALL, named_configs
from repro.pipeline.stats import SimStats
from repro.timing import (
    CriticalPathModel,
    achieved_frequency_mhz,
    estimate_area,
    estimate_power,
    relative_timing,
    scheme_stage_delays,
    synthesize,
)

SCHEMES = ("baseline", "stt-rename", "stt-issue", "nda")


def test_baseline_frequency_decreases_with_width():
    freqs = [achieved_frequency_mhz(c, "baseline") for c in named_configs()]
    assert freqs == sorted(freqs, reverse=True)
    # BOOM-on-U250 range, per Figure 9.
    assert 140 < freqs[0] < 175
    assert 60 < freqs[-1] < 95


def test_stt_rename_timing_collapses_with_width():
    """Figure 9/10: the serial YRoT chain bites wide cores."""
    rel = [relative_timing(c, "stt-rename") for c in named_configs()]
    assert rel[0] > 0.98                    # Small: negligible
    assert rel[-1] < 0.85                   # Mega: ~0.80x
    assert rel == sorted(rel, reverse=True)  # monotone degradation


def test_stt_issue_timing_flat_after_medium():
    rel = [relative_timing(c, "stt-issue") for c in named_configs()]
    assert rel[0] > 0.93
    assert rel[1] < 0.93                    # the Medium drop
    assert abs(rel[2] - rel[3]) < 0.05      # then roughly flat


def test_nda_timing_at_or_above_baseline():
    for config in named_configs():
        assert relative_timing(config, "nda") >= 0.999


def test_critical_stage_attribution():
    assert synthesize(MEGA, "baseline").critical_stage == "regread_bypass"
    assert synthesize(MEGA, "stt-rename").critical_stage == "rename"
    assert synthesize(MEGA, "stt-issue").critical_stage == "issue"


def test_stt_rename_beats_stt_issue_on_small():
    """Section 4.4: STT-Issue pays a higher flat cost on small designs."""
    assert relative_timing(SMALL, "stt-rename") > relative_timing(SMALL, "stt-issue")
    assert relative_timing(MEGA, "stt-rename") < relative_timing(MEGA, "stt-issue")


def test_meets_timing_api():
    result = synthesize(SMALL, "baseline")
    assert result.meets_timing(result.frequency_mhz - 1)
    assert not result.meets_timing(result.frequency_mhz + 10)


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        scheme_stage_delays(MEGA, "dolma")
    with pytest.raises(ValueError):
        estimate_area(MEGA, "dolma")


def test_area_table4_structure():
    """Table 4's sign structure at Mega: STT adds LUTs+FFs, STT-Rename
    is the FF-heaviest (checkpoints), NDA saves LUTs."""
    base = estimate_area(MEGA, "baseline")
    rename = estimate_area(MEGA, "stt-rename")
    issue = estimate_area(MEGA, "stt-issue")
    nda = estimate_area(MEGA, "nda")
    r_luts, r_ffs = rename.relative_to(base)
    i_luts, i_ffs = issue.relative_to(base)
    n_luts, n_ffs = nda.relative_to(base)
    assert 1.03 < r_luts < 1.10 and 1.06 < r_ffs < 1.13
    assert 1.03 < i_luts < 1.10 and 1.01 < i_ffs < 1.07
    assert n_luts < 1.0 and 1.0 < n_ffs < 1.06
    assert r_ffs > i_ffs  # checkpoints dominate the FF delta


def test_area_scales_with_config():
    small = estimate_area(SMALL, "baseline")
    mega = estimate_area(MEGA, "baseline")
    assert mega.luts > small.luts
    assert mega.ffs > small.ffs


def _stats(**overrides):
    stats = SimStats(cycles=1000, committed_instructions=1500,
                     fetched_instructions=1800, committed_loads=300,
                     committed_branches=200)
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


def test_power_nda_below_baseline():
    base = estimate_power(MEGA, "baseline", _stats(wasted_issue_slots=120,
                                                   spec_wakeup_kills=40))
    nda = estimate_power(MEGA, "nda", _stats(deferred_broadcasts=100))
    assert nda.relative_to(base) < 1.0


def test_power_stt_issue_above_baseline():
    base = estimate_power(MEGA, "baseline", _stats())
    issue = estimate_power(MEGA, "stt-issue", _stats(wasted_issue_slots=80))
    assert issue.relative_to(base) > 1.0


def test_stage_delays_positive_and_complete():
    for config in named_configs():
        for scheme in SCHEMES:
            delays = scheme_stage_delays(config, scheme)
            for stage, value in delays.as_dict().items():
                assert value > 0, (config.name, scheme, stage)
            stage, worst = delays.critical()
            assert worst == max(delays.as_dict().values())
