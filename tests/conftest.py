"""Shared fixtures for the test suite."""

import pytest

from repro import MEGA, SMALL, OoOCore, make_scheme, run_reference
from repro.core.registry import scheme_names
from repro.workloads.generator import WorkloadProfile, generate_program

#: Every registered scheme, straight from the registry — new variants
#: automatically join the scheme-parametrised tests.
ALL_SCHEMES = scheme_names()


@pytest.fixture(params=ALL_SCHEMES)
def scheme_name(request):
    """Parametrise a test over every scheme."""
    return request.param


def run_all_schemes(program, config=MEGA, **core_kwargs):
    """Run a program under every scheme; returns {name: result}."""
    results = {}
    for name in ALL_SCHEMES:
        core = OoOCore(program, config=config, scheme=make_scheme(name),
                       **core_kwargs)
        results[name] = core.run()
    return results


def assert_matches_reference(program, result, context=""):
    """Assert a pipeline result's architectural state equals the oracle."""
    ref = run_reference(program, max_steps=5_000_000)
    for reg in range(32):
        assert result.regs[reg] == ref.state.read_reg(reg), (
            "%s: register x%d mismatch: pipeline %d vs reference %d"
            % (context, reg, result.regs[reg], ref.state.read_reg(reg))
        )
    ref_memory = {a: v for a, v in ref.state.memory.items() if v != 0}
    got_memory = {a: v for a, v in result.memory.items() if v != 0}
    assert got_memory == ref_memory, "%s: memory mismatch" % context


def small_profile(name="test", **overrides):
    """A fast-to-simulate workload profile for integration tests."""
    params = dict(
        name=name,
        iterations=8,
        body_templates=6,
        body_blocks=2,
        working_set_words=256,
        ring_words=32,
        scratch_words=16,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def small_program(name="test", seed=1, **overrides):
    return generate_program(small_profile(name, **overrides), seed=seed)
