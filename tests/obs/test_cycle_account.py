"""Top-down cycle accounting: conservation, attribution, zero-cost off.

Three contracts pinned here:

* *Conservation* — every commit slot is attributed exactly once:
  ``sum(leaf slots) + committed_instructions == width x cycles`` and
  ``account.cycles == stats.cycles``, across every scheme variant.
* *Attribution* — each secure scheme's delay surfaces as
  ``scheme_delayed`` with that scheme's own sub-cause label on a
  shadow-heavy workload, and the baseline never charges it.
* *Disabled-path equivalence* — enabling the observability sinks
  changes nothing but the ``cycacct.*`` extras: every cell of the
  golden equivalence grid (tests/pipeline) re-simulated with
  accounting *and* pipeline tracing on must be byte-identical to the
  recorded obs-off fixture once those extras are stripped.
"""

import pathlib

import pytest

from repro.core.factory import make_scheme
from repro.harness.store import ResultStore, simulation_key
from repro.obs import CycleAccount, LEAF_CAUSES, PipeTracer
from repro.pipeline.config import MEGA, SMALL
from repro.pipeline.core import OoOCore
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    shadowed_miss_kernel,
    streaming_kernel,
)

#: Same grid as the golden equivalence suite (tests/pipeline).
GOLDEN_DIR = (pathlib.Path(__file__).parent.parent
              / "pipeline" / "golden_store")
GOLDEN_VERSION = "golden-v1"

SCHEME_VARIANTS = (
    ("baseline", {}),
    ("stt-rename", {}),
    ("stt-rename", {"split_store_taints": True}),
    ("stt-issue", {}),
    ("nda", {}),
    ("fence", {}),
    ("delay-on-miss", {}),
)

CONFIGS = (SMALL, MEGA)

#: scheme name -> the sub-cause label its delay must surface as.
DELAY_LABELS = {
    "fence": "fence-bound-to-commit",
    "stt-rename": "stt-taint-not-cleared",
    "stt-issue": "stt-taint-not-cleared",
    "nda": "nda-budget-block",
    "delay-on-miss": "delay-on-miss-defer",
}


def golden_programs():
    return [
        streaming_kernel(iterations=48, array_words=256),
        chase_kernel(iterations=48, ring_words=64),
        forwarding_kernel(iterations=32, slots=8, array_words=256),
        generate_program(
            WorkloadProfile(
                name="mixed",
                iterations=10,
                body_templates=6,
                body_blocks=3,
                working_set_words=256,
                ring_words=32,
                scratch_words=16,
            ),
            seed=7,
        ),
    ]


def grid_cells():
    return [
        (program, config, scheme_name, scheme_kwargs)
        for program in golden_programs()
        for config in CONFIGS
        for scheme_name, scheme_kwargs in SCHEME_VARIANTS
    ]


def _cell_id(cell):
    program, config, scheme_name, scheme_kwargs = cell
    suffix = "-split" if scheme_kwargs.get("split_store_taints") else ""
    return "%s-%s-%s%s" % (program.name, config.name, scheme_name, suffix)


_CELLS = grid_cells()


def simulate_with_obs(program, config, scheme_name, scheme_kwargs):
    account = CycleAccount()
    core = OoOCore(
        program,
        config=config,
        scheme=make_scheme(scheme_name, **scheme_kwargs),
        account=account,
        tracer=PipeTracer(limit=100),
    )
    return core.run(), account


def assert_conserved(result, account):
    slots = account.width * account.cycles
    leaf_total = sum(account.leaves.values())
    committed = result.stats.committed_instructions
    assert account.cycles == result.stats.cycles
    assert leaf_total + committed == slots, (
        "conservation violated: %d leaf + %d committed != %d slots"
        % (leaf_total, committed, slots)
    )
    assert set(account.leaves) <= set(LEAF_CAUSES)
    # Sub-causes are a refinement of the scheme_delayed leaf, never a
    # separate pool.
    assert sum(account.scheme_sub.values()) == account.leaves.get(
        "scheme_delayed", 0)


@pytest.fixture(scope="module")
def golden_store():
    if not GOLDEN_DIR.is_dir():
        pytest.fail("golden fixture missing at %s" % GOLDEN_DIR)
    return ResultStore(GOLDEN_DIR)


@pytest.mark.parametrize("cell", _CELLS, ids=[_cell_id(c) for c in _CELLS])
def test_obs_enabled_conserves_and_matches_golden(cell, golden_store):
    """One pass over the golden grid checks both contracts per cell."""
    program, config, scheme_name, scheme_kwargs = cell
    key = simulation_key(
        program.name, config, scheme_name, scheme_kwargs=scheme_kwargs,
        scale=1.0, seed=0, model_version=GOLDEN_VERSION,
    )
    golden = golden_store.load(key)
    assert golden is not None, "no golden result for %s" % _cell_id(cell)

    result, account = simulate_with_obs(
        program, config, scheme_name, scheme_kwargs)
    assert_conserved(result, account)

    # Strip the (and only the) cycacct extras: the remainder must be
    # byte-identical to the obs-off fixture.
    got = result.to_dict()
    extras = got["stats"]["extra"]
    cycacct = [name for name in extras if name.startswith("cycacct.")]
    assert cycacct, "obs-enabled run recorded no cycle account"
    for name in cycacct:
        del extras[name]
    assert got == golden.to_dict(), (
        "%s: observability perturbed the simulation" % _cell_id(cell)
    )


@pytest.mark.parametrize("scheme_name", sorted(DELAY_LABELS))
def test_scheme_delay_surfaces_with_own_subcause(scheme_name):
    """Shadow-heavy workload: every secure scheme charges scheme_delayed
    under exactly its own label (direct head delay or back-pressure)."""
    program = shadowed_miss_kernel(iterations=32)
    result, account = simulate_with_obs(program, MEGA, scheme_name, {})
    assert_conserved(result, account)
    delayed = account.leaves.get("scheme_delayed", 0)
    assert delayed > 0, "%s never charged scheme_delayed" % scheme_name
    assert set(account.scheme_sub) == {DELAY_LABELS[scheme_name]}
    assert account.scheme_sub[DELAY_LABELS[scheme_name]] == delayed


def test_baseline_never_charges_scheme_delay():
    for config in CONFIGS:
        result, account = simulate_with_obs(
            shadowed_miss_kernel(iterations=32), config, "baseline", {})
        assert_conserved(result, account)
        assert "scheme_delayed" not in account.leaves
        assert account.scheme_sub == {}
        assert account.issue_blocks == {}


@pytest.mark.parametrize(
    "scheme_variant", SCHEME_VARIANTS,
    ids=["%s%s" % (n, "-split" if k.get("split_store_taints") else "")
         for n, k in SCHEME_VARIANTS],
)
def test_fast_forward_account_matches_pure_stepping(scheme_variant):
    """Idle-cycle fast-forward and pure stepping must attribute every
    slot identically — window classification is provably constant."""
    scheme_name, scheme_kwargs = scheme_variant
    program = shadowed_miss_kernel(iterations=32)

    fast_account = CycleAccount()
    fast_core = OoOCore(program, config=SMALL,
                        scheme=make_scheme(scheme_name, **scheme_kwargs),
                        account=fast_account)
    fast = fast_core.run()

    slow_account = CycleAccount()
    slow_core = OoOCore(program, config=SMALL,
                        scheme=make_scheme(scheme_name, **scheme_kwargs),
                        account=slow_account)
    while not slow_core.halted and slow_core.cycle < 100_000:
        slow_core.step()
    slow = slow_core.result()

    assert slow_core.halted
    assert fast_core.ff_skipped_cycles > 0, "fast-forward never engaged"
    assert fast_account.as_extra() == slow_account.as_extra()
    assert fast.to_dict() == slow.to_dict()
    assert_conserved(fast, fast_account)


def test_account_extras_ride_simulation_result():
    """as_extra lands in stats.extra and round-trips the store format,
    and SimStats.cycle_account() strips the namespace back off."""
    program = streaming_kernel(iterations=8, array_words=64)
    result, account = simulate_with_obs(program, SMALL, "baseline", {})
    extras = result.stats.extra
    assert extras["cycacct.width"] == SMALL.width
    assert extras["cycacct.cycles"] == result.stats.cycles
    recovered = result.stats.cycle_account()
    assert recovered["width"] == SMALL.width
    for leaf, slots in account.leaves.items():
        assert recovered[leaf] == slots
