"""Cluster telemetry and the metrics pipeline, end to end.

Unit layer: frame stamping (:func:`repro.obs.cell_telemetry`), the
per-worker / per-scheme rollup (:class:`repro.obs.TelemetryAggregate`),
its text rendering, and the JSONL progress mode.  Integration layer: a
real local-workers cluster campaign must surface telemetry through
``executor.last_stats``, and ``cycle_account_breakdown`` over the
resulting store must reproduce a conserved per-scheme stall breakdown
— the ``python -m repro metrics`` contract.
"""

import io
import json

from repro.analysis import cycle_account_breakdown, format_stall_report
from repro.harness.cluster import ClusterExecutor
from repro.harness.progress import ProgressReporter
from repro.harness.runner import CampaignRunner
from repro.harness.store import ResultStore
from repro.obs import TelemetryAggregate, cell_telemetry, format_rollup
from repro.pipeline.config import SMALL

SUBSET = ("503.bwaves", "548.exchange2")


def simulate_one():
    runner = CampaignRunner(scale=0.05, benchmarks=(SUBSET[0],))
    return runner.run(SUBSET[0], SMALL, "baseline")


# ----------------------------------------------------------------------
# Frame stamping.
# ----------------------------------------------------------------------

def test_cell_telemetry_stamps_frame():
    result = simulate_one()
    frame = cell_telemetry(result, 1.25, peak_rss_kb=4096,
                           diagnostics={"ff_skipped_cycles": 17,
                                        "wall_seconds": 99.0})
    assert frame["wall_seconds"] == 1.25  # diagnostics never override
    assert frame["simulated_cycles"] == result.cycles
    assert frame["committed_instructions"] == \
        result.stats.committed_instructions
    assert frame["peak_rss_kb"] == 4096
    assert frame["ff_skipped_cycles"] == 17
    # Frames must be wire-safe as-is.
    assert json.loads(json.dumps(frame)) == frame


def test_cell_telemetry_optional_fields_absent():
    frame = cell_telemetry(simulate_one(), 0.5)
    assert "peak_rss_kb" not in frame


# ----------------------------------------------------------------------
# Aggregation and rendering.
# ----------------------------------------------------------------------

def _frame(wall, cycles, rss):
    return {"wall_seconds": wall, "simulated_cycles": cycles,
            "committed_instructions": cycles, "replayed_uops": 3,
            "peak_rss_kb": rss}


def test_aggregate_rollup_per_worker_and_scheme():
    agg = TelemetryAggregate()
    agg.add("w1", "baseline", _frame(1.0, 100, 2000))
    agg.add("w1", "nda", _frame(2.0, 300, 5000))
    agg.add("w2", "nda", _frame(0.5, 200, 3000))
    agg.add("w2", "nda", None)  # absent frame: tolerated, not counted

    rollup = agg.rollup()
    assert rollup["cells"] == 3
    assert rollup["wall_seconds"] == 3.5
    assert rollup["per_worker"]["w1"]["cells"] == 2
    # peak RSS aggregates as a max, not a sum.
    assert rollup["per_worker"]["w1"]["peak_rss_kb"] == 5000
    nda = rollup["per_scheme"]["nda"]
    assert nda["cells"] == 2
    assert nda["simulated_cycles"] == 500
    assert nda["replayed_uops"] == 6

    text = format_rollup(rollup)
    assert "3 cells" in text
    assert "worker w1" in text and "worker w2" in text
    assert "scheme nda" in text and "scheme baseline" in text
    assert agg.format() == text


def test_empty_rollup():
    agg = TelemetryAggregate()
    assert agg.rollup() == {}
    assert format_rollup({}) == "telemetry: no frames recorded"
    assert format_rollup(None) == "telemetry: no frames recorded"


# ----------------------------------------------------------------------
# JSONL progress mode.
# ----------------------------------------------------------------------

def test_progress_json_mode_emits_parseable_snapshots():
    stream = io.StringIO()
    reporter = ProgressReporter(label="grid", stream=stream,
                                min_interval=0.0, mode="json")
    reporter.begin(2)
    reporter.cell_done(worker="w1")
    reporter.cell_done(worker="w2")
    reporter.finish()

    lines = [line for line in stream.getvalue().splitlines() if line]
    assert lines, "json mode emitted nothing"
    for line in lines:
        snap = json.loads(line)
        assert snap["label"] == "grid"
        assert snap["total"] == 2
    final = json.loads(lines[-1])
    assert final["done"] == 2
    assert final["per_worker"] == {"w1": 1, "w2": 1}


def test_progress_mode_validated():
    import pytest
    with pytest.raises(ValueError, match="unknown progress mode"):
        ProgressReporter(mode="yaml")


# ----------------------------------------------------------------------
# Cluster integration + metrics over the persisted store.
# ----------------------------------------------------------------------

def test_cluster_campaign_surfaces_telemetry_and_metrics(tmp_path):
    store = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=SUBSET, store=store)
    executor = ClusterExecutor(local_workers=2, wait_timeout=120)
    summary = runner.run_grid(configs=(SMALL,),
                              schemes=("baseline", "fence"),
                              executor=executor)
    assert summary["simulated"] == 4

    rollup = executor.last_stats["telemetry"]
    assert rollup["cells"] == 4
    assert rollup["wall_seconds"] > 0
    assert sum(b["cells"] for b in rollup["per_worker"].values()) == 4
    assert set(rollup["per_scheme"]) == {"baseline", "fence"}
    for bucket in rollup["per_worker"].values():
        assert bucket.get("peak_rss_kb", 0) > 0

    # The persisted cells carry their cycle accounts; the metrics
    # breakdown over them must reproduce a conserved per-scheme view.
    breakdown = cycle_account_breakdown(store.iter_results())
    assert set(breakdown) == {"baseline", "fence"}
    for scheme, bucket in breakdown.items():
        assert bucket["cells"] == 2
        assert bucket["conserved"], "%s failed conservation" % scheme
        assert bucket["slots"] == sum(bucket["leaves"].values()) + \
            bucket["committed"]
    assert "scheme_delayed" not in breakdown["baseline"]["leaves"]

    report = format_stall_report(breakdown)
    assert "baseline" in report and "fence" in report
    assert "conservation: ok" in report
    assert "conservation: VIOLATED" not in report
