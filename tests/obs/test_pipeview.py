"""O3PipeView tracing: golden byte stability and format invariants.

The golden fixture (``golden_pipeview.txt``) is the rendered trace of
a small deterministic loop with a mispredicting branch, so it pins
both record shapes at once: retired uops with real retire ticks and
squashed wrong-path uops with the ``retire:0`` viewer convention.
Regenerate (only on an intentional format or kernel change)::

    PYTHONPATH=src python tests/obs/test_pipeview.py --regenerate
"""

import pathlib
import sys

import pytest

from repro.core.factory import make_scheme
from repro.isa import assemble
from repro.obs import PipeTracer, trace_pipeline
from repro.pipeline.config import SMALL
from repro.pipeline.core import OoOCore

GOLDEN_FILE = pathlib.Path(__file__).parent / "golden_pipeview.txt"

#: Six stages per uop plus the retire line.
LINES_PER_RECORD = 7

_STAGE_PREFIXES = (
    "O3PipeView:fetch:",
    "O3PipeView:decode:",
    "O3PipeView:rename:",
    "O3PipeView:dispatch:",
    "O3PipeView:issue:",
    "O3PipeView:complete:",
    "O3PipeView:retire:",
)


def golden_program():
    return assemble(
        """
            li   t0, 6
            li   t1, 0
            li   t2, 0
        loop:
            lw   t3, 0(t2)
            addi t1, t1, 7
            add  t1, t1, t3
            sw   t1, 4(t2)
            addi t2, t2, 4
            addi t0, t0, -1
            bne  t0, zero, loop
            halt
        """,
        name="pipeview-golden",
    )


def trace_golden(limit=200):
    tracer = PipeTracer(limit=limit)
    core = OoOCore(golden_program(), config=SMALL,
                   scheme=make_scheme("baseline"), tracer=tracer)
    result = core.run()
    return tracer, result


def test_golden_dump_is_byte_stable():
    tracer, _ = trace_golden()
    assert GOLDEN_FILE.is_file(), (
        "fixture missing — regenerate with "
        "'PYTHONPATH=src python %s --regenerate'" % __file__
    )
    assert tracer.render() == GOLDEN_FILE.read_text(), (
        "O3PipeView output drifted from the golden dump; viewers parse "
        "this byte format — regenerate only for an intentional change"
    )


def test_render_format_invariants():
    tracer, result = trace_golden()
    text = tracer.render()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert len(lines) == LINES_PER_RECORD * len(tracer.records)
    for index, line in enumerate(lines):
        assert line.startswith(_STAGE_PREFIXES[index % LINES_PER_RECORD])
    # Every committed instruction appears (limit was not hit) and the
    # wrong-path extras carry the squash convention.
    assert len(tracer.records) >= result.stats.committed_instructions
    assert tracer.dropped == 0


def test_squashed_uops_emit_retire_zero():
    tracer, result = trace_golden()
    squashed = [record for record in tracer.records if record[7] == 0]
    assert squashed, "mispredicting loop produced no squashed records"
    assert len(squashed) == len(tracer.records) - \
        result.stats.committed_instructions
    text = tracer.render()
    assert "O3PipeView:retire:0:store:0" in text


def test_limit_bounds_capture_and_counts_drops():
    tracer, result = trace_golden(limit=10)
    assert len(tracer.records) == 10
    assert tracer.dropped > 0
    # The bound keeps the *oldest* records: sequence numbers ascend
    # from the start of the program.
    seqs = [record[0] for record in tracer.records]
    assert seqs == sorted(seqs)


def test_empty_tracer_renders_empty_string():
    assert PipeTracer().render() == ""


def test_trace_pipeline_validates_benchmark():
    with pytest.raises(ValueError, match="unknown bench workload"):
        trace_pipeline("definitely-not-a-benchmark")


def test_trace_pipeline_runs_bench_workload():
    tracer, result = trace_pipeline(
        "streaming-warm", config=SMALL, scale=0.02, limit=64)
    assert result.halted
    assert 0 < len(tracer.records) <= 64
    assert tracer.render().startswith("O3PipeView:fetch:")


def regenerate():
    tracer, result = trace_golden()
    GOLDEN_FILE.write_text(tracer.render())
    print("recorded %d records (%d squashed) to %s"
          % (len(tracer.records),
             len(tracer.records) - result.stats.committed_instructions,
             GOLDEN_FILE))


if __name__ == "__main__":
    if "--regenerate" not in sys.argv:
        print("usage: python %s --regenerate" % sys.argv[0])
        raise SystemExit(2)
    regenerate()
