"""Integration tests: the out-of-order core vs the reference oracle."""

import pytest

from repro import LARGE, MEDIUM, MEGA, SMALL, OoOCore, assemble, make_scheme
from repro.isa.interp import run_reference

from tests.conftest import assert_matches_reference, run_all_schemes


def test_straight_line_arithmetic(scheme_name):
    program = assemble("""
        li   t0, 6
        li   t1, 7
        mul  t2, t0, t1
        div  t3, t2, t0
        rem  t4, t2, t1
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    assert result.regs[7] == 42
    assert result.regs[28] == 7
    assert result.regs[29] == 0
    assert_matches_reference(program, result, scheme_name)


def test_loop_with_memory(scheme_name):
    program = assemble("""
        li   t0, 20
        li   t1, 0
        li   t2, 0
    loop:
        sw   t1, 100(t2)
        lw   a0, 100(t2)
        add  t1, t1, a0
        addi t1, t1, 1
        addi t2, t2, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    assert_matches_reference(program, result, scheme_name)
    assert result.stats.committed_loads == 20
    assert result.stats.committed_stores == 20


def test_data_dependent_branches(scheme_name):
    program = assemble("""
        .word 50 1
        .word 51 0
        .word 52 1
        .word 53 1
        li   t0, 4
        li   t1, 0
        li   t2, 0
    loop:
        lw   a0, 50(t2)
        beq  a0, zero, skip
        addi t1, t1, 10
    skip:
        addi t2, t2, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    assert result.regs[6] == 30
    assert_matches_reference(program, result, scheme_name)


@pytest.mark.parametrize("config", [SMALL, MEDIUM, LARGE, MEGA],
                         ids=lambda c: c.name)
def test_all_configs_execute_correctly(config):
    program = assemble("""
        li   t0, 12
        li   t1, 1
    loop:
        slli t1, t1, 1
        addi t1, t1, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        sw   t1, 0(zero)
        halt
    """)
    for scheme, result in run_all_schemes(program, config=config).items():
        assert_matches_reference(program, result, "%s/%s" % (config.name, scheme))


def test_store_load_forwarding_same_address(scheme_name):
    program = assemble("""
        li t0, 11
        sw t0, 8(zero)
        lw t1, 8(zero)
        addi t1, t1, 1
        sw t1, 8(zero)
        lw t2, 8(zero)
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    assert result.regs[7] == 12
    assert_matches_reference(program, result, scheme_name)


def test_ipc_not_degenerate(scheme_name):
    program = assemble("""
        li   t0, 64
    loop:
        addi t1, t1, 1
        addi t2, t2, 2
        addi t3, t3, 3
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    if scheme_name == "fence":
        # The delay-all baseline resolves branches in age order, so the
        # loop cannot overlap across iterations — near-1 IPC is its
        # *correct* (and documented) degeneration, not a kernel bug.
        assert result.stats.ipc > 0.8
    else:
        assert result.stats.ipc > 1.0  # independent ALU work must overlap


def test_wider_core_is_faster():
    program = assemble("""
        li   t0, 64
    loop:
        addi t1, t1, 1
        addi t2, t2, 2
        addi t3, t3, 3
        addi t4, t4, 4
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """)
    small = OoOCore(program, config=SMALL).run()
    mega = OoOCore(program, config=MEGA).run()
    assert mega.stats.cycles < small.stats.cycles


def test_jalr_indirect_jump(scheme_name):
    program = assemble("""
        li   t0, 5
        jalr ra, t0, 0
        halt
        nop
        nop
        li   t1, 99
        halt
    """)
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name))
    result = core.run()
    assert result.regs[6] == 99


def test_max_instructions_cap():
    program = assemble("""
        li   t0, 1000
    loop:
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """)
    core = OoOCore(program, config=MEGA)
    result = core.run(max_instructions=50)
    assert 50 <= result.stats.committed_instructions <= 54


def test_watchdog_reports_deadlock():
    program = assemble("""
        li t0, 4
    loop:
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """)
    core = OoOCore(program, config=MEGA, watchdog_cycles=10)
    core._last_commit_cycle = -100  # force the watchdog to fire
    with pytest.raises(RuntimeError):
        core.run()
