"""Unit tests for pipeline components: micro-ops, regfile, IQ, fetch."""

import pytest

from repro import MEGA, SMALL, OoOCore, assemble
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.regfile import NOT_READY, READY, SPEC_READY, PhysRegFile
from repro.pipeline.uop import ADDR, DATA, WHOLE, MicroOp


def test_uop_classification_cache():
    load = MicroOp(0, 0, Instruction(op=Opcode.LW, rd=1, rs1=2))
    assert load.op_is_load and load.is_load
    assert load.op_is_transmitter
    store = MicroOp(1, 0, Instruction(op=Opcode.SW, rs1=1, rs2=2))
    assert store.op_is_store and not store.op_is_load
    div = MicroOp(2, 0, Instruction(op=Opcode.DIV, rd=1, rs1=2, rs2=3))
    assert div.op_is_div and div.op_latency == 12


def test_uop_fully_issued_semantics():
    store = MicroOp(0, 0, Instruction(op=Opcode.SW, rs1=1, rs2=2))
    assert not store.fully_issued
    store.addr_issued = True
    assert not store.fully_issued
    store.data_issued = True
    assert store.fully_issued
    alu = MicroOp(1, 0, Instruction(op=Opcode.ADD, rd=1, rs1=2, rs2=3))
    alu.addr_issued = True
    assert alu.fully_issued


def test_uop_kill_bumps_generation():
    uop = MicroOp(0, 0, Instruction(op=Opcode.NOP))
    gen = uop.gen
    uop.kill()
    assert uop.killed and uop.gen == gen + 1


def test_uop_replay_resets_issue_state():
    uop = MicroOp(0, 0, Instruction(op=Opcode.ADD, rd=1, rs1=2, rs2=3))
    uop.addr_issued = True
    uop.completed = True
    uop.spec_deps = {4}
    gen = uop.gen
    uop.replay()
    assert not uop.addr_issued and not uop.completed
    assert uop.spec_deps is None
    assert uop.gen == gen + 1


def test_group_admission_reference_apis():
    """The standalone group APIs (the reference forms of the core's
    inlined group build): mark_alloc_group marks exactly the writers,
    admit_group queues memory micro-ops in program order."""
    from repro.pipeline.config import SMALL
    from repro.pipeline.lsu import LoadStoreUnit
    from repro.workloads.kernels import streaming_kernel

    uops = [
        MicroOp(0, 0, Instruction(Opcode.LW, rd=3, rs1=1, imm=0)),
        MicroOp(1, 1, Instruction(Opcode.ADD, rd=4, rs1=3, rs2=3)),
        MicroOp(2, 2, Instruction(Opcode.SW, rs1=1, rs2=4, imm=8)),
        MicroOp(3, 3, Instruction(Opcode.LW, rd=5, rs1=1, imm=16)),
    ]
    uops[0].prd, uops[1].prd = 40, 41  # as the RAT pass would set

    prf = PhysRegFile(64)
    prf.mark_alloc_group(uops)
    assert prf.state[40] == NOT_READY and prf.state[41] == NOT_READY
    assert prf.state[42] == READY  # untouched

    core = OoOCore(streaming_kernel(iterations=2, array_words=32),
                   config=SMALL)
    lsu = LoadStoreUnit(core)
    lsu.admit_group(uops)
    assert [u.seq for u in lsu.ldq] == [0, 3]
    assert [u.seq for u in lsu.stq] == [2]


def test_regfile_spec_state_machine():
    prf = PhysRegFile(40)
    prf.mark_alloc(35)
    assert prf.state[35] == NOT_READY
    assert not prf.is_usable(35)
    prf.set_spec_ready(35)
    assert prf.state[35] == SPEC_READY
    assert prf.is_usable(35) and prf.is_spec(35) and not prf.is_ready(35)
    prf.revoke_spec(35)
    assert prf.state[35] == NOT_READY
    prf.write(35, 99)
    assert prf.is_ready(35) and prf.read(35) == 99


def test_regfile_spec_does_not_demote_ready():
    prf = PhysRegFile(40)
    prf.write(35, 1)
    prf.set_spec_ready(35)   # no effect on READY registers
    assert prf.state[35] == READY
    prf.revoke_spec(35)      # ditto
    assert prf.state[35] == READY


def test_regfile_write_value_only_keeps_not_ready():
    """NDA's split data-write / broadcast path (Figure 5b)."""
    prf = PhysRegFile(40)
    prf.mark_alloc(35)
    prf.write_value_only(35, 77)
    assert prf.read(35) == 77
    assert not prf.is_usable(35)
    prf.set_ready(35)
    assert prf.is_ready(35)


def test_regfile_minimum_size():
    with pytest.raises(ValueError):
        PhysRegFile(32)


def test_fetch_follows_taken_branches():
    program = assemble("""
        jal  zero, target
        nop
        nop
    target:
        halt
    """)
    core = OoOCore(program, config=MEGA)
    result = core.run()
    # Only the jal and halt commit; the nops are never fetched.
    assert result.stats.committed_instructions == 2
    assert result.stats.fetched_instructions == 2


def test_fetch_stalls_on_runaway_pc():
    """A wrong-path jalr to a wild target must not crash fetch."""
    program = assemble("""
        .word 100 3
        lw   t0, 100(zero)
        jalr ra, t0, 0
        nop
        halt
    """)
    result = OoOCore(program, config=MEGA).run()
    assert result.halted


def test_issue_respects_mem_width():
    # SMALL has one memory port: two independent loads can never issue
    # in the same cycle, bounding load throughput.
    program = assemble("""
        li   ra, 32
        li   sp, 0x1000
    loop:
        lw   a0, 0(sp)
        lw   a1, 1(sp)
        addi ra, ra, -1
        bne  ra, zero, loop
        halt
    """)
    program.initial_memory[0x1000] = 1
    program.initial_memory[0x1001] = 2
    result = OoOCore(program, config=SMALL, warm_caches=True).run()
    # 64 loads through one port: at least 64 cycles just for loads.
    assert result.stats.cycles >= 64


def test_divider_is_unpipelined():
    serial = assemble("""
        li t0, 100
        li t1, 7
        div t2, t0, t1
        div t3, t0, t1
        div t4, t0, t1
        halt
    """)
    result = OoOCore(serial, config=MEGA).run()
    # Three 12-cycle divides through one unpipelined unit: >= 36 cycles.
    assert result.stats.cycles >= 36


def test_halves_are_distinct_markers():
    assert len({WHOLE, ADDR, DATA}) == 3
