"""Trace replay equivalence: the timing replayer is bit-identical to
the in-line functional kernel, for every scheme, on workloads chosen to
stress the replay boundary (wrong-path fallback, purity tracking,
squash re-entry, spec-wakeup kills).

The golden suite (``test_kernel_equivalence``) pins replay-on runs
against a replay-free fixture; this module fuzzes the on/off diff
directly across more behaviourally extreme workloads, and asserts the
replay path actually *engages* — so the equivalence can never pass
vacuously because the stream fell off-trace and stayed there.
"""

import pytest

from repro.core.factory import make_scheme
from repro.isa.trace import record_trace
from repro.pipeline.config import MEGA, SMALL
from repro.pipeline.core import OoOCore
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    shadowed_miss_kernel,
    streaming_kernel,
)

SCHEME_VARIANTS = (
    ("baseline", {}),
    ("stt-rename", {}),
    ("stt-rename", {"split_store_taints": True}),
    ("stt-issue", {}),
    ("nda", {}),
    ("fence", {}),
    ("delay-on-miss", {}),
)


def _programs():
    """Workloads spanning the replay boundary's failure modes:

    * ``streaming`` — the easy case (long pure on-trace stretches);
    * ``chase`` — serial misses: spec-wakeup kills/replays re-execute
      on-trace loads whose purity must re-derive, not leak;
    * ``forwarding`` — ordering violations, partial store issue, and
      store-forwarded values: the impure-address masking case;
    * ``shadowed-miss`` — NDA/STT release windows over piles of
      completed loads (the batch-release path);
    * ``mixed``/``squashy`` — generated blends with data-dependent
      branches: dense squash/re-entry traffic on the trace position.
    """
    return [
        streaming_kernel(iterations=24, array_words=128),
        chase_kernel(iterations=48, ring_words=64),
        forwarding_kernel(iterations=32, slots=8, array_words=256),
        shadowed_miss_kernel(iterations=32, guard_words=512,
                             victim_words=512),
        generate_program(
            WorkloadProfile(name="mixed", iterations=10, body_templates=6,
                            body_blocks=3, working_set_words=256,
                            ring_words=32, scratch_words=16),
            seed=11,
        ),
        generate_program(
            WorkloadProfile(name="squashy", iterations=14, body_templates=4,
                            body_blocks=2, working_set_words=128,
                            ring_words=16, scratch_words=8),
            seed=23,
        ),
    ]


_PROGRAMS = _programs()
_TRACES = [record_trace(p) for p in _PROGRAMS]


def _run(program, config, scheme_name, scheme_kwargs, trace):
    return OoOCore(
        program, config=config,
        scheme=make_scheme(scheme_name, **scheme_kwargs),
        trace=trace,
    ).run()


@pytest.mark.parametrize("index", range(len(_PROGRAMS)),
                         ids=[p.name for p in _PROGRAMS])
@pytest.mark.parametrize("config", (SMALL, MEGA), ids=lambda c: c.name)
def test_replay_equals_inline_for_every_scheme(index, config):
    program = _PROGRAMS[index]
    trace = _TRACES[index]
    for scheme_name, scheme_kwargs in SCHEME_VARIANTS:
        on = _run(program, config, scheme_name, scheme_kwargs, trace)
        off = _run(program, config, scheme_name, scheme_kwargs, None)
        assert on.to_dict() == off.to_dict(), (
            "replay diverged: %s under %s/%s"
            % (program.name, config.name, scheme_name)
        )


def test_replay_actually_engages(monkeypatch):
    """Most completions on a squash-heavy workload must come from the
    trace, not the functional fallback — otherwise every equivalence
    above would hold trivially with replay never exercised.  Trace-fed
    completions arrive two ways: singleton ``_replay_complete`` calls
    and bulk members of ``_ev_replay_batch`` (counted by the core's
    ``replay_batch_uops``); both count as engagement."""
    replayed = [0]
    orig_replay = OoOCore._replay_complete

    def counting_replay(self, uop, op, ti):
        replayed[0] += 1
        return orig_replay(self, uop, op, ti)

    monkeypatch.setattr(OoOCore, "_replay_complete", counting_replay)

    program = _PROGRAMS[-1]  # squashy
    core = OoOCore(program, config=MEGA, scheme=make_scheme("baseline"),
                   trace=_TRACES[-1])
    result = core.run()
    committed = result.stats.committed_instructions
    assert result.halted and committed > 0
    engaged = replayed[0] + core.replay_batch_uops
    assert engaged > committed // 2, (
        "replay engaged on only %d of %d completions"
        % (engaged, committed)
    )


def test_batch_replay_engages_on_streaming():
    """The streaming kernel's long pure on-trace stretches must produce
    bulk-completion batches — the counter pins the fast path actually
    firing, not just being legal."""
    program = _PROGRAMS[0]  # streaming
    core = OoOCore(program, config=MEGA, scheme=make_scheme("baseline"),
                   trace=_TRACES[0])
    result = core.run()
    assert result.halted
    assert core.replay_batch_events > 0
    assert core.replay_batch_uops >= 2 * core.replay_batch_events, (
        "batches must bulk-complete at least two uops each"
    )


def _serial_chain_kernel():
    """A workload on which batch replay can never engage: every plain
    ALU op reads *only* the destination of the immediately preceding
    plain ALU op, so at most one becomes ready per completion and no
    cycle ever holds two same-cycle plain-ALU completions.  Branch
    arms are ``jal``-separated so the join point still reads a single
    in-flight register.  A data-dependent branch keeps squash traffic
    dense; asserting the counter stays at zero pins the legality gate
    (batching needs >= 2 same-cycle completions)."""
    from repro.isa.assembler import assemble

    lines = [
        "li x1, 7",
        "addi x5, x1, 500",   # limit; the only reader of x1 here
        "addi x1, x5, -480",  # chain restart off x5, not x1
        "loop:",
        "addi x2, x1, 3",
        "xori x3, x2, 21",
        "addi x2, x3, 2",
        "xori x3, x2, 9",
        "andi x2, x3, 1",     # parity of the mixed value: ~random
        "beq x2, x0, even",
        "add x4, x3, x2",     # arms wake on x2 (x3 arrived earlier),
        "jal x0, join",       # keeping the chain's magnitude alive
        "even:",
        "add x4, x2, x3",
        "join:",
        "addi x1, x4, 1",
        "blt x1, x5, loop",
        "halt",
    ]
    return assemble("\n".join(lines), name="serial-chain")


def test_batch_replay_zero_on_serial_chain():
    program = _serial_chain_kernel()
    trace = record_trace(program)
    core = OoOCore(program, config=MEGA, scheme=make_scheme("baseline"),
                   trace=trace)
    result = core.run()
    assert result.halted
    assert result.stats.branch_mispredicts > 0, (
        "kernel no longer mispredicts; the zero-batch claim is vacuous"
    )
    assert core.replay_batch_events == 0
    assert core.replay_batch_uops == 0


@pytest.mark.parametrize("index", range(len(_PROGRAMS)),
                         ids=[p.name for p in _PROGRAMS])
def test_batch_replay_off_is_bit_identical(index):
    """The REPRO_NO_BATCH_REPLAY escape hatch (mirrored by the
    ``batch_replay=False`` kwarg) must not perturb simulated time: the
    batch path is a host-side optimisation only."""
    program = _PROGRAMS[index]
    trace = _TRACES[index]
    for scheme_name, scheme_kwargs in SCHEME_VARIANTS:
        on_core = OoOCore(program, config=MEGA,
                          scheme=make_scheme(scheme_name, **scheme_kwargs),
                          trace=trace)
        on = on_core.run()
        off_core = OoOCore(program, config=MEGA,
                           scheme=make_scheme(scheme_name, **scheme_kwargs),
                           trace=trace, batch_replay=False)
        off = off_core.run()
        assert off_core.replay_batch_events == 0
        assert on.to_dict() == off.to_dict(), (
            "batch replay perturbed timing: %s under %s"
            % (program.name, scheme_name)
        )


def test_trace_reentry_after_mispredicts(monkeypatch):
    """Squash recovery must put the fetch stream back on-trace: on a
    mispredict-heavy workload the replayer keeps engaging *after* the
    first misprediction (off-trace-forever would still be correct, but
    would silently forfeit the tentpole)."""
    program = _PROGRAMS[-1]  # squashy
    trace = _TRACES[-1]
    core = OoOCore(program, config=MEGA, scheme=make_scheme("baseline"),
                   trace=trace)
    late_replays = [0]
    saw_squash = [False]
    orig_replay = OoOCore._replay_complete
    orig_squash = OoOCore._process_squash

    def counting_replay(self, uop, op, ti):
        if saw_squash[0]:
            late_replays[0] += 1
        return orig_replay(self, uop, op, ti)

    def marking_squash(self):
        if self._pending_squash is not None:
            saw_squash[0] = True
        return orig_squash(self)

    monkeypatch.setattr(OoOCore, "_replay_complete", counting_replay)
    monkeypatch.setattr(OoOCore, "_process_squash", marking_squash)
    result = core.run()
    assert result.halted
    assert result.stats.branch_mispredicts > 0, (
        "workload no longer mispredicts; pick a squashier one"
    )
    assert late_replays[0] > 0, "stream never re-entered the trace"


def test_wrong_trace_is_rejected():
    other = record_trace(streaming_kernel(iterations=4, array_words=64))
    with pytest.raises(ValueError):
        OoOCore(chase_kernel(iterations=4, ring_words=32), config=MEGA,
                trace=other)
