"""Behavioural tests for LSU forwarding, violations, and replay."""

from repro import MEGA, OoOCore, assemble, make_scheme
from repro.workloads.kernels import chase_kernel, forwarding_kernel, streaming_kernel

from tests.conftest import assert_matches_reference


def test_forwarding_counted_on_baseline():
    program = forwarding_kernel(iterations=50)
    result = OoOCore(program, config=MEGA).run()
    assert result.stats.store_forwards > 0
    assert result.stats.stl_forward_errors == 0
    assert_matches_reference(program, result, "baseline")


def test_stt_rename_causes_forwarding_errors():
    """The Section 9.2 anomaly: blocked store address generation makes
    untainted reloads read stale memory and flush."""
    program = forwarding_kernel(iterations=120)
    rename = OoOCore(program, config=MEGA, scheme=make_scheme("stt-rename")).run()
    issue = OoOCore(program, config=MEGA, scheme=make_scheme("stt-issue")).run()
    nda = OoOCore(program, config=MEGA, scheme=make_scheme("nda")).run()
    assert rename.stats.stl_forward_errors > 10 * max(
        1, nda.stats.stl_forward_errors
    )
    assert rename.stats.order_violation_flushes > 0
    # STT-Issue's split operand taints keep address generation flowing.
    assert issue.stats.stl_forward_errors <= rename.stats.stl_forward_errors / 5
    # And every scheme still computes the right answer.
    for result in (rename, issue, nda):
        assert_matches_reference(program, result, result.scheme_name)


def test_violation_index_flags_exactly_matching_younger_loads():
    """The address-indexed violation scan must flag precisely the
    same-address loads younger than a late-resolving store — no more
    (the different-address load stays clean), no fewer (both victims
    counted)."""
    source = """
        li   sp, 0x1000
        li   t0, 7
        li   t3, 0x2000
        div  t1, t0, t0       # slow chain delays the store address
        add  t2, t1, t1
        sub  t2, t2, t2
        add  t4, t2, sp
        sw   t0, 0(t4)        # resolves to 0x1000 long after the loads
        lw   a1, 0(sp)        # younger, same address: violation
        lw   a2, 0(sp)        # younger, same address: violation
        lw   a3, 0(t3)        # younger, different address: clean
        add  s1, a1, a2
        add  s1, s1, a3
        halt
    """
    program = assemble(source, name="late-store")
    program.initial_memory[0x2000] = 99
    result = OoOCore(program, config=MEGA).run()
    assert result.stats.stl_forward_errors == 2
    assert result.stats.order_violation_flushes == 1
    assert_matches_reference(program, result, "late-store")


def test_violation_detection_stable_across_ldq_sizes():
    """Growing the LDQ (the scan the index replaced was O(younger
    loads)) must not change what is detected."""
    program = forwarding_kernel(iterations=120)
    big = MEGA.scaled(name="mega-big-ldq", ldq_entries=64, stq_entries=64)
    big_ldq = OoOCore(program, config=big,
                      scheme=make_scheme("stt-rename")).run()
    assert big_ldq.stats.stl_forward_errors > 0
    assert_matches_reference(program, big_ldq, "stt-rename-big-ldq")


def test_store_resolution_clears_memory_dependence_sets():
    """A store address resolution must clear exactly its waiters'
    pending sets (and their D-shadows) — pinned via NDA, whose releases
    gate on ``d_pending``: a leaked entry would deadlock the run."""
    program = forwarding_kernel(iterations=80, slots=8)
    result = OoOCore(program, config=MEGA, scheme=make_scheme("nda")).run()
    assert result.halted
    assert result.stats.deferred_broadcasts > 0
    assert_matches_reference(program, result, "nda-dpending")


def test_violation_flush_preserves_correctness(scheme_name):
    program = forwarding_kernel(iterations=60)
    result = OoOCore(program, config=MEGA, scheme=make_scheme(scheme_name)).run()
    assert_matches_reference(program, result, scheme_name)


def test_pointer_chase_is_serial():
    program = chase_kernel(iterations=40, ring_words=64)
    result = OoOCore(program, config=MEGA, warm_caches=True).run()
    # A chase hop takes at least L1 latency; IPC must reflect serialization.
    assert result.stats.ipc < 1.5
    assert_matches_reference(program, result, "chase")


def test_streaming_hits_after_warmup():
    program = streaming_kernel(iterations=200, array_words=1024)
    core = OoOCore(program, config=MEGA, warm_caches=True)
    result = core.run()
    stats = core.hierarchy.stats()
    assert stats["l1_hits"] > stats["dram_accesses"]
    assert_matches_reference(program, result, "stream")


def test_spec_wakeup_kills_on_misses():
    """Loads that miss L1 broadcast speculative wakeups that get killed,
    wasting issue slots — unless the scheme (NDA) removes the logic."""
    program = streaming_kernel(iterations=150, stride=64, array_words=65536)
    baseline = OoOCore(program, config=MEGA).run()
    nda = OoOCore(program, config=MEGA, scheme=make_scheme("nda")).run()
    assert baseline.stats.spec_wakeup_kills > 0
    assert nda.stats.spec_wakeup_kills == 0


def test_nda_defers_broadcasts_under_shadows():
    source = """
        li   ra, 60
        li   sp, 0x1000
        li   t0, 0
    loop:
        andi t1, t0, 255
        add  t1, t1, sp
        lw   a1, 0(t1)
        slti t2, a1, 100000
        beq  t2, zero, skip
        addi s2, s2, 1
    skip:
        add  a2, a1, a1
        addi t0, t0, 1
        addi ra, ra, -1
        bne  ra, zero, loop
        halt
    """
    program = assemble(source, name="nda-defer")
    for i in range(256):
        program.initial_memory[0x1000 + i] = i
    nda = OoOCore(program, config=MEGA, scheme=make_scheme("nda"),
                  warm_caches=True).run()
    assert nda.stats.deferred_broadcasts > 0
    assert_matches_reference(program, nda, "nda")


def test_load_to_zero_register_survives_l1_miss():
    """A destination-less load (rd == x0) that misses the L1 must not
    broadcast a speculative wakeup — it has no physical register to
    mark, revoke, or replay consumers of (regression: the spec-ready
    event used to index the register file with None)."""
    program = assemble("""
        li   sp, 4096
        lw   zero, 0(sp)
        lw   a0, 8(sp)
        halt
    """, name="rd0-load")
    program.initial_memory[4096] = 7
    result = OoOCore(program, config=MEGA).run()  # cold caches: both miss
    assert result.halted
    assert result.stats.committed_loads == 2
    assert_matches_reference(program, result, "rd0-load")
