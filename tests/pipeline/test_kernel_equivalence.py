"""Golden-results equivalence suite for the simulation kernel.

The fast-path work on the kernel (event heap, idle-cycle fast-forward,
wakeup-driven issue scheduling) is only legal because it is *cycle-for-
cycle equivalent* to the reference stepping model.  This suite pins
that claim to data: a small scheme x config x workload grid was
simulated with the pre-fast-path kernel and stored — via the ordinary
:class:`~repro.harness.store.ResultStore` — under ``golden_store/``
next to this file.  Every test re-simulates one cell with the current
kernel and asserts a bit-identical result: cycles, IPC, every stall and
replay counter, and the final architectural registers and memory.

The fixture keys use a frozen ``model_version`` stamp
(:data:`GOLDEN_VERSION`) instead of the live package version, so
package version bumps never silently orphan the fixture.

Regenerate (only when an *intentional* model change invalidates it)::

    PYTHONPATH=src python tests/pipeline/test_kernel_equivalence.py --regenerate
"""

import pathlib
import sys

import pytest

from repro.core.factory import make_scheme
from repro.harness.store import ResultStore, simulation_key
from repro.isa.trace import record_trace
from repro.pipeline.config import MEGA, SMALL
from repro.pipeline.core import OoOCore
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    streaming_kernel,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden_store"

#: Frozen fixture stamp — deliberately NOT the package version.
GOLDEN_VERSION = "golden-v1"

#: Scheme variants under test: every registered scheme plus the
#: Section 9.2 split-store-taint ablation of STT-Rename.  The PR 4
#: engine refactor (event-scheduled scheme hooks) regenerated the
#: fixture; every pre-existing cell stayed byte-identical, pinning the
#: polled -> scheduled equivalence, and the fence / delay-on-miss
#: variants were recorded on top.
SCHEME_VARIANTS = (
    ("baseline", {}),
    ("stt-rename", {}),
    ("stt-rename", {"split_store_taints": True}),
    ("stt-issue", {}),
    ("nda", {}),
    ("fence", {}),
    ("delay-on-miss", {}),
)

CONFIGS = (SMALL, MEGA)


def golden_programs():
    """Small, deterministic workloads covering the kernel's behaviours:

    * ``streaming`` — independent loads, predictable branch;
    * ``chase`` — serial dependent loads (cache misses, spec-wakeup
      kills and replays);
    * ``forwarding`` — store-to-load forwarding, partial store issue,
      ordering-violation flushes (the Section 9.2 anomaly recipe);
    * ``mixed`` — generated workload with data-dependent branches,
      mul/div, and stores (squashes, checkpoints, taint churn).
    """
    return [
        streaming_kernel(iterations=48, array_words=256),
        chase_kernel(iterations=48, ring_words=64),
        forwarding_kernel(iterations=32, slots=8, array_words=256),
        generate_program(
            WorkloadProfile(
                name="mixed",
                iterations=10,
                body_templates=6,
                body_blocks=3,
                working_set_words=256,
                ring_words=32,
                scratch_words=16,
            ),
            seed=7,
        ),
    ]


def cell_key(program_name, config, scheme_name, scheme_kwargs):
    return simulation_key(
        program_name,
        config,
        scheme_name,
        scheme_kwargs=scheme_kwargs,
        scale=1.0,
        seed=0,
        model_version=GOLDEN_VERSION,
    )


#: Memoised canonical traces, one per golden program: every cell runs
#: with trace replay *enabled*, so the whole grid doubles as the
#: replay-is-byte-identical acceptance (the fixture was recorded by the
#: purely functional kernel and is unchanged).
_TRACES = {}


def trace_for(program):
    entry = _TRACES.get(id(program))
    if entry is None or entry[0] is not program:
        _TRACES[id(program)] = entry = (program, record_trace(program))
    return entry[1]


def simulate(program, config, scheme_name, scheme_kwargs, replay=True):
    core = OoOCore(
        program,
        config=config,
        scheme=make_scheme(scheme_name, **scheme_kwargs),
        trace=trace_for(program) if replay else None,
    )
    return core.run()


def grid_cells():
    cells = []
    for program in golden_programs():
        for config in CONFIGS:
            for scheme_name, scheme_kwargs in SCHEME_VARIANTS:
                cells.append((program, config, scheme_name, scheme_kwargs))
    return cells


def _cell_id(cell):
    program, config, scheme_name, scheme_kwargs = cell
    suffix = "-split" if scheme_kwargs.get("split_store_taints") else ""
    return "%s-%s-%s%s" % (program.name, config.name, scheme_name, suffix)


_CELLS = grid_cells()


@pytest.fixture(scope="module")
def golden_store():
    if not GOLDEN_DIR.is_dir():
        pytest.fail(
            "golden fixture missing at %s — regenerate with "
            "'PYTHONPATH=src python %s --regenerate'" % (GOLDEN_DIR, __file__)
        )
    return ResultStore(GOLDEN_DIR)


@pytest.mark.parametrize("cell", _CELLS, ids=[_cell_id(c) for c in _CELLS])
def test_kernel_matches_golden(cell, golden_store):
    program, config, scheme_name, scheme_kwargs = cell
    key = cell_key(program.name, config, scheme_name, scheme_kwargs)
    golden = golden_store.load(key)
    assert golden is not None, (
        "no golden result for %s — regenerate the fixture" % _cell_id(cell)
    )
    result = simulate(program, config, scheme_name, scheme_kwargs)

    got_stats = result.stats.to_dict()
    want_stats = golden.stats.to_dict()
    for name in sorted(set(got_stats) | set(want_stats)):
        assert got_stats.get(name) == want_stats.get(name), (
            "%s: stats counter %r diverged: got %r, golden %r"
            % (_cell_id(cell), name, got_stats.get(name), want_stats.get(name))
        )
    assert result.cycles == golden.cycles
    assert result.ipc == golden.ipc
    assert result.halted == golden.halted
    assert result.regs == golden.regs, "architectural registers diverged"
    assert result.memory == golden.memory, "architectural memory diverged"
    # Belt and braces: the full serialised form must round-trip equal.
    assert result.to_dict() == golden.to_dict()


@pytest.mark.parametrize(
    "scheme_variant", SCHEME_VARIANTS,
    ids=["%s%s" % (n, "-split" if k.get("split_store_taints") else "")
         for n, k in SCHEME_VARIANTS],
)
def test_replay_on_equals_replay_off(scheme_variant):
    """Trace replay on == trace replay off, bit for bit, per scheme.

    The golden grid above runs with replay *on* against a replay-free
    fixture, which already implies this — but only for fixture cells.
    This is the direct statement, on the workload with the richest
    wrong-path behaviour (forwarding: ordering violations, partial
    store issue, squash storms), under both configs.
    """
    scheme_name, scheme_kwargs = scheme_variant
    program = forwarding_kernel(iterations=32, slots=8, array_words=256)
    for config in CONFIGS:
        on = simulate(program, config, scheme_name, scheme_kwargs)
        off = simulate(program, config, scheme_name, scheme_kwargs,
                       replay=False)
        assert on.to_dict() == off.to_dict(), (
            "replay changed results under %s/%s"
            % (config.name, scheme_name)
        )


@pytest.mark.parametrize(
    "scheme_variant", SCHEME_VARIANTS,
    ids=["%s%s" % (n, "-split" if k.get("split_store_taints") else "")
         for n, k in SCHEME_VARIANTS],
)
def test_fast_forward_matches_pure_stepping(scheme_variant):
    """run() (idle-cycle fast-forward) == a pure step() loop, bit for bit.

    The golden fixture pins today's kernel against the recorded one;
    this pins the fast-forward path against the stepping path *inside*
    the current kernel, and asserts the fast-forward actually engaged.
    """
    scheme_name, scheme_kwargs = scheme_variant
    program = chase_kernel(iterations=48, ring_words=64)

    fast_core = OoOCore(
        program, config=MEGA,
        scheme=make_scheme(scheme_name, **scheme_kwargs),
    )
    fast = fast_core.run()

    slow_core = OoOCore(
        program, config=MEGA,
        scheme=make_scheme(scheme_name, **scheme_kwargs),
    )
    while not slow_core.halted and slow_core.cycle < 100_000:
        slow_core.step()
    slow = slow_core.result()

    assert slow_core.halted, "stepping run did not finish"
    assert fast.to_dict() == slow.to_dict()
    assert fast_core.ff_skipped_cycles > 0, (
        "fast-forward never engaged on a miss-heavy workload"
    )
    assert slow_core.ff_skipped_cycles == 0


def regenerate():
    store = ResultStore(GOLDEN_DIR)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    store.clear()
    for cell in _CELLS:
        program, config, scheme_name, scheme_kwargs = cell
        key = cell_key(program.name, config, scheme_name, scheme_kwargs)
        # Recorded functionally (replay off): the grid tests then pin
        # the trace replayer against a replay-free fixture.
        result = simulate(program, config, scheme_name, scheme_kwargs,
                          replay=False)
        store.save(key, result, meta={
            "golden_version": GOLDEN_VERSION,
            "benchmark": program.name,
            "config": config.name,
            "scheme": scheme_name,
            "scheme_kwargs": dict(scheme_kwargs),
        })
        print("recorded %-40s cycles=%-7d ipc=%.3f"
              % (_cell_id(cell), result.cycles, result.ipc))
    print("golden fixture: %d cells under %s" % (len(_CELLS), GOLDEN_DIR))


if __name__ == "__main__":
    if "--regenerate" not in sys.argv:
        print("usage: python %s --regenerate" % sys.argv[0])
        raise SystemExit(2)
    regenerate()
