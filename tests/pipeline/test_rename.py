"""Unit tests for the rename unit."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.rename import RenameUnit
from repro.pipeline.uop import MicroOp


def make_uop(seq, op=Opcode.ADD, rd=5, rs1=6, rs2=7):
    return MicroOp(seq, seq, Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2))


def test_initial_identity_mapping():
    rename = RenameUnit(64, 4)
    for arch in range(32):
        assert rename.lookup(arch) == arch
    assert rename.free_regs() == 32


def test_rename_allocates_and_redirects():
    rename = RenameUnit(64, 4)
    uop = make_uop(0)
    rename.rename_sources(uop)
    assert uop.prs1 == 6 and uop.prs2 == 7
    preg = rename.rename_dest(uop)
    assert preg == 32
    assert rename.lookup(5) == 32
    assert uop.stale_prd == 5


def test_same_cycle_dependency_chains_through_rat():
    rename = RenameUnit(64, 4)
    producer = make_uop(0, rd=5)
    rename.rename_sources(producer)
    rename.rename_dest(producer)
    consumer = make_uop(1, rd=8, rs1=5, rs2=5)
    rename.rename_sources(consumer)
    assert consumer.prs1 == producer.prd
    assert consumer.prs2 == producer.prd


def test_checkpoint_restore_recovers_rat_and_free_list():
    rename = RenameUnit(64, 4)
    branch = make_uop(0, op=Opcode.BEQ, rd=0, rs1=1, rs2=2)
    checkpoint = rename.create_checkpoint(branch, ghr=0)
    wrong = [make_uop(i, rd=5) for i in range(1, 4)]
    for uop in wrong:
        rename.rename_sources(uop)
        rename.rename_dest(uop)
    free_before = rename.free_regs()
    rename.restore_checkpoint(checkpoint.checkpoint_id, wrong)
    assert rename.lookup(5) == 5
    assert rename.free_regs() == free_before + 3
    rename.check_invariants()


def test_restore_discards_younger_checkpoints():
    rename = RenameUnit(64, 8)
    older = make_uop(0, op=Opcode.BEQ, rd=0)
    younger = make_uop(5, op=Opcode.BEQ, rd=0)
    cp_old = rename.create_checkpoint(older, ghr=0)
    rename.create_checkpoint(younger, ghr=0)
    assert rename.free_checkpoints() == 6
    rename.restore_checkpoint(cp_old.checkpoint_id, [])
    assert rename.free_checkpoints() == 8


def test_commit_frees_stale_mapping():
    rename = RenameUnit(64, 4)
    first = make_uop(0, rd=5)
    rename.rename_dest(first)
    second = make_uop(1, rd=5)
    rename.rename_dest(second)
    free_before = rename.free_regs()
    rename.commit(first)   # frees p5 (identity stale)
    rename.commit(second)  # frees first.prd
    assert rename.free_regs() == free_before + 2
    assert rename.arch_rat[5] == second.prd


def test_flush_all_rebuilds_from_arch_rat():
    rename = RenameUnit(64, 4)
    committed = make_uop(0, rd=5)
    rename.rename_dest(committed)
    rename.commit(committed)
    wrong = make_uop(1, rd=6)
    rename.rename_dest(wrong)
    rename.flush_all()
    assert rename.lookup(5) == committed.prd
    assert rename.lookup(6) == 6
    rename.check_invariants()
    # Wrong-path preg is back in the free pool.
    assert wrong.prd in rename.free_list


def test_checkpoint_exhaustion_raises():
    rename = RenameUnit(64, 1)
    rename.create_checkpoint(make_uop(0, op=Opcode.BEQ, rd=0), ghr=0)
    with pytest.raises(RuntimeError):
        rename.create_checkpoint(make_uop(1, op=Opcode.BEQ, rd=0), ghr=0)


def test_invariants_catch_duplicate_mapping():
    rename = RenameUnit(64, 4)
    rename.rat[5] = rename.rat[6]
    with pytest.raises(AssertionError):
        rename.check_invariants()
