"""Unit tests for the rename unit."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.rename import RenameUnit
from repro.pipeline.uop import MicroOp


def make_uop(seq, op=Opcode.ADD, rd=5, rs1=6, rs2=7):
    return MicroOp(seq, seq, Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2))


def test_initial_identity_mapping():
    rename = RenameUnit(64, 4)
    for arch in range(32):
        assert rename.lookup(arch) == arch
    assert rename.free_regs() == 32


def test_rename_allocates_and_redirects():
    rename = RenameUnit(64, 4)
    uop = make_uop(0)
    rename.rename_sources(uop)
    assert uop.prs1 == 6 and uop.prs2 == 7
    preg = rename.rename_dest(uop)
    assert preg == 32
    assert rename.lookup(5) == 32
    assert uop.stale_prd == 5


def test_same_cycle_dependency_chains_through_rat():
    rename = RenameUnit(64, 4)
    producer = make_uop(0, rd=5)
    rename.rename_sources(producer)
    rename.rename_dest(producer)
    consumer = make_uop(1, rd=8, rs1=5, rs2=5)
    rename.rename_sources(consumer)
    assert consumer.prs1 == producer.prd
    assert consumer.prs2 == producer.prd


def _fresh_group(with_state=False):
    """A group exercising every rename_group behaviour: same-cycle
    chains, a branch checkpoint mid-group, x0 non-allocation, and a
    post-branch writer the checkpoint must exclude."""
    uops = [
        make_uop(0, rd=5, rs1=1, rs2=2),
        make_uop(1, rd=8, rs1=5, rs2=5),          # consumes uop 0 in-group
        make_uop(2, op=Opcode.BEQ, rd=0, rs1=8, rs2=3),  # checkpoint here
        make_uop(3, rd=5, rs1=8, rs2=4),          # re-renames x5 after branch
    ]
    for uop in uops:
        uop.ghr_at_predict = ("ghr", uop.seq)
    return uops


def test_rename_group_matches_per_uop_composition():
    """rename_group == rename_sources + rename_dest + create_checkpoint
    applied strictly in program order, field for field — including the
    mid-group checkpoint snapshot and identical free-list consumption."""
    grouped = RenameUnit(64, 4)
    serial = RenameUnit(64, 4)

    group = _fresh_group()
    grouped.rename_group(group)

    reference = _fresh_group()
    for uop in reference:
        serial.rename_sources(uop)
        if uop.writes_reg:
            serial.rename_dest(uop)
        if uop.instr.info.is_branch or uop.instr.op is Opcode.JALR:
            serial.create_checkpoint(uop, uop.ghr_at_predict)

    for got, want in zip(group, reference):
        for field in ("prs1", "prs2", "prd", "stale_prd", "checkpoint_id"):
            assert getattr(got, field) == getattr(want, field), (
                "uop %d field %s diverged" % (got.seq, field))
    assert grouped.rat == serial.rat
    assert list(grouped.free_list) == list(serial.free_list)
    got_cp = grouped.get_checkpoint(group[2].checkpoint_id)
    want_cp = serial.get_checkpoint(reference[2].checkpoint_id)
    assert got_cp.rat == want_cp.rat
    assert got_cp.branch_seq == want_cp.branch_seq
    # The snapshot sees uops 0-1's allocations but not uop 3's.
    assert got_cp.rat[5] == group[0].prd
    assert got_cp.rat[8] == group[1].prd
    assert grouped.rat[5] == group[3].prd != group[0].prd


def test_rename_group_marks_destinations_not_ready():
    """The fused reg_state pass: every allocated destination goes
    NOT_READY, and nothing else is touched."""
    from repro.pipeline.regfile import NOT_READY, READY, PhysRegFile

    rename = RenameUnit(64, 4)
    prf = PhysRegFile(64)
    group = _fresh_group()
    rename.rename_group(group, prf.state)
    allocated = {uop.prd for uop in group if uop.prd is not None}
    assert allocated  # the group writes registers
    for preg in range(64):
        expected = NOT_READY if preg in allocated else READY
        assert prf.state[preg] == expected, "preg %d" % preg


def test_rename_group_consumes_exactly_the_writers():
    """The group pass pops exactly one free register per destination
    writer, in sequential order — no over- or under-allocation."""
    rename = RenameUnit(64, 4)
    group = _fresh_group()
    writers = sum(1 for uop in group
                  if uop.instr.info.writes_rd and uop.instr.rd != 0)
    before = list(rename.free_list)
    rename.rename_group(group)
    assert rename.free_regs() == len(before) - writers
    allocated = [uop.prd for uop in group if uop.prd is not None]
    assert allocated == before[:writers]  # same pop order as rename_dest


def test_checkpoint_restore_recovers_rat_and_free_list():
    rename = RenameUnit(64, 4)
    branch = make_uop(0, op=Opcode.BEQ, rd=0, rs1=1, rs2=2)
    checkpoint = rename.create_checkpoint(branch, ghr=0)
    wrong = [make_uop(i, rd=5) for i in range(1, 4)]
    for uop in wrong:
        rename.rename_sources(uop)
        rename.rename_dest(uop)
    free_before = rename.free_regs()
    rename.restore_checkpoint(checkpoint.checkpoint_id, wrong)
    assert rename.lookup(5) == 5
    assert rename.free_regs() == free_before + 3
    rename.check_invariants()


def test_restore_discards_younger_checkpoints():
    rename = RenameUnit(64, 8)
    older = make_uop(0, op=Opcode.BEQ, rd=0)
    younger = make_uop(5, op=Opcode.BEQ, rd=0)
    cp_old = rename.create_checkpoint(older, ghr=0)
    rename.create_checkpoint(younger, ghr=0)
    assert rename.free_checkpoints() == 6
    rename.restore_checkpoint(cp_old.checkpoint_id, [])
    assert rename.free_checkpoints() == 8


def test_commit_frees_stale_mapping():
    rename = RenameUnit(64, 4)
    first = make_uop(0, rd=5)
    rename.rename_dest(first)
    second = make_uop(1, rd=5)
    rename.rename_dest(second)
    free_before = rename.free_regs()
    rename.commit(first)   # frees p5 (identity stale)
    rename.commit(second)  # frees first.prd
    assert rename.free_regs() == free_before + 2
    assert rename.arch_rat[5] == second.prd


def test_flush_all_rebuilds_from_arch_rat():
    rename = RenameUnit(64, 4)
    committed = make_uop(0, rd=5)
    rename.rename_dest(committed)
    rename.commit(committed)
    wrong = make_uop(1, rd=6)
    rename.rename_dest(wrong)
    rename.flush_all()
    assert rename.lookup(5) == committed.prd
    assert rename.lookup(6) == 6
    rename.check_invariants()
    # Wrong-path preg is back in the free pool.
    assert wrong.prd in rename.free_list


def test_checkpoint_exhaustion_raises():
    rename = RenameUnit(64, 1)
    rename.create_checkpoint(make_uop(0, op=Opcode.BEQ, rd=0), ghr=0)
    with pytest.raises(RuntimeError):
        rename.create_checkpoint(make_uop(1, op=Opcode.BEQ, rd=0), ghr=0)


def test_invariants_catch_duplicate_mapping():
    rename = RenameUnit(64, 4)
    rename.rat[5] = rename.rat[6]
    with pytest.raises(AssertionError):
        rename.check_invariants()
