"""Micro-op pool: reset completeness, recycling, and recovery safety.

The pool's correctness argument (see :mod:`repro.pipeline.uop`) rests
on the reset methods *together* restoring every field a fresh
construction would — a stale field surviving into a recycled micro-op's
next life is exactly the class of bug object pooling invites.  Reset is
partitioned (``reset`` re-arms the hot slots, ``reset_mem`` the
memory-side slots loads/stores read, ``reset_deferred`` the
written-before-read remainder) so the hot path can skip cold groups;
the fuzz tests below are structural: they derive the field lists from
the partition constants and from ``MicroOp.__slots__``, so a newly
added slot that no reset method covers — or a slot claimed by two
groups — fails the suite immediately.

The behavioural tests exercise the two recovery paths that return
micro-ops to the pool in bulk — checkpoint-restore squashes and
full-pipeline ordering-violation flushes — and pin the architectural
result against the in-order reference interpreter while asserting the
pool actually recycled (bounded fresh allocations).
"""

import pytest

from repro import OoOCore, make_scheme, run_reference
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.config import MEGA, SMALL
from repro.pipeline.uop import (
    DEFERRED_SLOTS,
    HOT_SLOTS,
    MEM_SLOTS,
    POOL_SLOTS,
    PREDICTION_SLOTS,
    MicroOp,
    MicroOpPool,
)
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.kernels import chase_kernel, forwarding_kernel

#: Slots whose post-reset value intentionally differs from a fresh
#: construction: ``gen`` is monotonic across lives (stale-event guard),
#: ``in_pool`` is owned by the pool, not by reset.
RESET_EXEMPT = ("gen", "in_pool")

_INSTRS = (
    Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2),
    Instruction(Opcode.LW, rd=4, rs1=2, imm=16),
    Instruction(Opcode.SW, rs1=2, rs2=3, imm=8),
    Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=7),
    Instruction(Opcode.JALR, rd=1, rs1=5, imm=0),
)

#: Garbage values per slot, varied by index so two slots can never
#: mask each other by holding the same junk.
_GARBAGE = (object(), "stale", -12345, {7: 7}, [9], 3.25, True, frozenset())


def _trash_every_slot(uop, salt=0):
    for index, name in enumerate(MicroOp.__slots__):
        if name == "in_pool":
            continue  # pool-owned; preserved across reset by contract
        setattr(uop, name, _GARBAGE[(index + salt) % len(_GARBAGE)])


def test_slot_partition_is_complete_and_disjoint():
    """Every slot belongs to exactly one reset group.

    The lazy-reset argument only holds if the partition constants and
    ``__slots__`` agree: a slot in no group would never be re-armed, a
    slot in two would hide which reset owns it.
    """
    groups = (HOT_SLOTS, PREDICTION_SLOTS, MEM_SLOTS, DEFERRED_SLOTS,
              POOL_SLOTS)
    union = [name for group in groups for name in group]
    assert len(union) == len(set(union)), "slot claimed by two groups"
    assert set(union) == set(MicroOp.__slots__), (
        "partition out of sync with __slots__: missing %s, extra %s"
        % (set(MicroOp.__slots__) - set(union),
           set(union) - set(MicroOp.__slots__))
    )


@pytest.mark.parametrize("instr", _INSTRS, ids=lambda i: i.op.name)
def test_full_reset_restores_every_slot(instr):
    """reset + reset_mem + reset_deferred == __init__ for every slot.

    This is the pool's ``acquire`` contract (the reference full
    re-arm): trash every slot with garbage, run all three reset
    methods, and diff attribute-by-attribute against a freshly
    constructed micro-op for the same dynamic instruction.  Structural:
    iterates ``__slots__``, so a new field that no reset method covers
    fails here before it can leak state between lives.
    """
    for salt in range(len(_GARBAGE)):
        recycled = MicroOp(1, 2, _INSTRS[0], 3)
        _trash_every_slot(recycled, salt=salt)
        recycled.gen = 41  # garbage pass clobbered it; make it an int
        recycled.reset(7, 11, instr, fetch_cycle=5)
        recycled.reset_prediction()
        recycled.reset_mem()
        recycled.reset_deferred()

        fresh = MicroOp(7, 11, instr, fetch_cycle=5)
        for name in MicroOp.__slots__:
            if name in RESET_EXEMPT:
                continue
            assert getattr(recycled, name) == getattr(fresh, name), (
                "slot %r survived recycling with a stale value "
                "(salt %d)" % (name, salt)
            )


@pytest.mark.parametrize("instr", _INSTRS, ids=lambda i: i.op.name)
def test_hot_reset_restores_every_hot_slot(instr):
    """reset() alone fully re-arms the HOT group (the dispatch fast
    path for non-memory micro-ops relies on exactly this)."""
    for salt in range(len(_GARBAGE)):
        recycled = MicroOp(1, 2, _INSTRS[0], 3)
        _trash_every_slot(recycled, salt=salt)
        recycled.gen = 41
        recycled.reset(7, 11, instr, fetch_cycle=5)

        fresh = MicroOp(7, 11, instr, fetch_cycle=5)
        for name in HOT_SLOTS:
            assert getattr(recycled, name) == getattr(fresh, name), (
                "hot slot %r not re-armed by reset() (salt %d)"
                % (name, salt)
            )


@pytest.mark.parametrize("instr", _INSTRS[1:3], ids=lambda i: i.op.name)
def test_mem_reset_restores_every_mem_slot(instr):
    """reset_mem() alone fully re-arms the MEM group (dispatch runs it
    for every load and store it pops from a recycled micro-op)."""
    for salt in range(len(_GARBAGE)):
        recycled = MicroOp(1, 2, _INSTRS[0], 3)
        _trash_every_slot(recycled, salt=salt)
        recycled.gen = 41
        recycled.reset(7, 11, instr, fetch_cycle=5)
        recycled.reset_mem()

        fresh = MicroOp(7, 11, instr, fetch_cycle=5)
        for name in MEM_SLOTS:
            assert getattr(recycled, name) == getattr(fresh, name), (
                "mem slot %r not re-armed by reset_mem() (salt %d)"
                % (name, salt)
            )


def test_reset_bumps_generation_monotonically():
    """Stale events snapshot (uop, gen); a recycled life must never
    match a previous life's snapshot."""
    instr = _INSTRS[0]
    uop = MicroOp(0, 0, instr)
    seen = {uop.gen}
    for life in range(1, 5):
        uop.kill()  # a squash also bumps gen
        seen.add(uop.gen)
        uop.reset(life, 0, instr)
        assert not uop.killed
        assert uop.gen not in (seen - {uop.gen}), "generation reused"
        seen.add(uop.gen)
    assert len(seen) == 9  # 1 initial + 4 kills + 4 resets, all distinct


def test_pool_release_is_idempotent():
    pool = MicroOpPool()
    uop = pool.acquire(0, 0, _INSTRS[0])
    assert pool.allocated == 1
    pool.release(uop)
    pool.release(uop)  # double release (commit sweep + scheme path)
    assert len(pool) == 1
    again = pool.acquire(1, 0, _INSTRS[0])
    assert again is uop
    assert not again.in_pool
    assert len(pool) == 0
    # release_all absorbs already-parked members too.
    other = pool.acquire(2, 0, _INSTRS[0])
    pool.release(other)
    pool.release_all([again, other])
    assert len(pool) == 2


def _assert_matches_reference(core, program):
    reference = run_reference(program, max_steps=2_000_000)
    result = core.run()
    for reg in range(32):
        assert result.regs[reg] == reference.state.read_reg(reg), (
            "x%d diverged under recycling" % reg
        )
    ref_memory = {a: v for a, v in reference.state.memory.items() if v != 0}
    got_memory = {a: v for a, v in result.memory.items() if v != 0}
    assert got_memory == ref_memory
    return result


def _assert_pool_sane(core):
    pool = core._uop_pool
    free = pool._free
    assert len(set(map(id, free))) == len(free), "pool holds duplicates"
    assert all(uop.in_pool for uop in free)
    # Allocations are bounded by the in-flight maximum, not the dynamic
    # instruction count: that bound is the whole point of the pool.
    in_flight_bound = (core.config.rob_entries + core.config.width
                       + core.config.fetch_buffer_entries)
    assert pool.allocated <= in_flight_bound
    return pool


@pytest.mark.parametrize("config", (SMALL, MEGA), ids=lambda c: c.name)
def test_pool_recycles_through_flushes(config):
    """Full-pipeline ordering-violation flushes return the whole ROB to
    the pool; the architectural result stays exact."""
    program = forwarding_kernel(iterations=24, slots=8, array_words=256)
    core = OoOCore(program, config=config, scheme=make_scheme("stt-rename"))
    result = _assert_matches_reference(core, program)
    assert result.stats.order_violation_flushes > 0, (
        "workload no longer exercises the flush path"
    )
    pool = _assert_pool_sane(core)
    assert pool.allocated < result.stats.committed_instructions, (
        "no recycling happened: every dynamic uop was a fresh allocation"
    )


@pytest.mark.parametrize("scheme", ("baseline", "nda", "delay-on-miss"))
def test_pool_recycles_through_checkpoint_squashes(scheme):
    """Mispredict squashes (checkpoint restore) recycle the squashed
    suffix — including under delayed-broadcast schemes, whose recovery
    hook must drop its own references first."""
    program = generate_program(
        WorkloadProfile(name="squashy", iterations=12, body_templates=6,
                        body_blocks=3, working_set_words=256, ring_words=32,
                        scratch_words=16, branch_entropy=0.9,
                        branch_on_load=0.8),
        seed=11,
    )
    core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme))
    result = _assert_matches_reference(core, program)
    assert result.stats.squashed_uops > 0, "workload never squashed"
    pool = _assert_pool_sane(core)
    assert pool.allocated < result.stats.committed_instructions


def test_pool_bounds_allocation_on_long_runs():
    """Steady-state allocation count is flat: doubling the dynamic
    instruction count must not grow fresh allocations."""
    def allocated_for(iterations):
        program = chase_kernel(iterations=iterations, ring_words=64)
        core = OoOCore(program, config=MEGA, scheme=make_scheme("baseline"))
        core.run()
        return core._uop_pool.allocated

    short = allocated_for(30)
    long = allocated_for(60)
    assert long == short, (
        "fresh allocations grew with run length (%d -> %d): recycling "
        "is not engaging in steady state" % (short, long)
    )
