"""Unit tests for the shadow tracker."""

from repro.core.shadows import C_SHADOW, D_SHADOW, ShadowTracker


def test_empty_tracker_is_all_safe():
    tracker = ShadowTracker()
    assert tracker.visibility_point() is None
    assert tracker.is_safe(0)
    assert tracker.is_safe(1000)


def test_visibility_point_is_oldest():
    tracker = ShadowTracker()
    tracker.cast(10, C_SHADOW)
    tracker.cast(5, C_SHADOW)
    tracker.cast(20, D_SHADOW)
    assert tracker.visibility_point() == 5


def test_shadow_source_is_itself_safe():
    tracker = ShadowTracker()
    tracker.cast(5, C_SHADOW)
    assert tracker.is_safe(5)
    assert not tracker.is_safe(6)
    assert tracker.is_safe(4)


def test_resolution_advances_vp():
    tracker = ShadowTracker()
    tracker.cast(5, C_SHADOW)
    tracker.cast(9, C_SHADOW)
    tracker.resolve(5)
    assert tracker.visibility_point() == 9
    tracker.resolve(9)
    assert tracker.visibility_point() is None


def test_resolve_unknown_is_noop():
    tracker = ShadowTracker()
    tracker.resolve(99)
    assert tracker.visibility_point() is None


def test_squash_younger():
    tracker = ShadowTracker()
    for seq in (3, 7, 11):
        tracker.cast(seq, C_SHADOW)
    tracker.squash_younger(7)
    assert tracker.visibility_point() == 3
    assert tracker.active_count() == 2


def test_clear():
    tracker = ShadowTracker()
    tracker.cast(1, C_SHADOW)
    tracker.clear()
    assert tracker.active_count() == 0
    assert tracker.visibility_point() is None


def test_counters():
    tracker = ShadowTracker()
    tracker.cast(1, C_SHADOW)
    tracker.cast(2, D_SHADOW)
    tracker.resolve(1)
    assert tracker.shadows_cast == 2
    assert tracker.shadows_resolved == 1


def test_active_shadows_sorted():
    tracker = ShadowTracker()
    tracker.cast(9, C_SHADOW)
    tracker.cast(2, D_SHADOW)
    assert tracker.active_shadows() == [(2, D_SHADOW), (9, C_SHADOW)]
