"""Contract tests for the speculation-scheme registry.

The registry is the single source of truth for scheme names,
constructor kwargs, grid membership, and timing-model parameters;
these tests pin the derivations that the rest of the stack — factory,
experiments, CLI, timing models, wire format — relies on staying in
sync with it.
"""

import pytest

from repro.core import factory
from repro.core.registry import (
    KwargSpec,
    SchemeSpec,
    get_spec,
    grid_scheme_names,
    iter_specs,
    make_scheme,
    scheme_names,
    secure_scheme_names,
)
from repro.pipeline.config import MEGA, named_configs
from repro.pipeline.stats import SimStats
from repro.timing.area import estimate_area
from repro.timing.critpath import StageDelays, scheme_stage_delays
from repro.timing.power import estimate_power
from repro.timing.synthesis import synthesize

_STAGE_NAMES = set(StageDelays(0, 0, 0, 0, 0, 0, 0).as_dict())


def test_canonical_names_and_order():
    names = scheme_names()
    # The paper's four schemes first, in evaluation order, then the
    # later variants.
    assert names[:4] == ("baseline", "stt-rename", "stt-issue", "nda")
    assert "fence" in names and "delay-on-miss" in names
    assert len(names) == len(set(names))


def test_factory_names_derive_from_registry():
    assert factory.SCHEME_NAMES == grid_scheme_names()
    assert secure_scheme_names() == tuple(
        n for n in grid_scheme_names() if n != "baseline"
    )


def test_experiments_schemes_derive_from_registry():
    from repro.harness.experiments import SCHEMES

    assert SCHEMES == secure_scheme_names()


def test_specs_are_self_consistent():
    for spec in iter_specs():
        assert isinstance(spec, SchemeSpec)
        assert spec.name == spec.name.lower()
        assert "_" not in spec.name
        assert spec.doc, "scheme %s has no description" % spec.name
        # The canonical name round-trips through construction.
        assert spec.factory().name == spec.name
        for key, entry in spec.kwargs.items():
            assert isinstance(entry, KwargSpec), (spec.name, key)


def test_unknown_name_rejected_everywhere():
    for call in (
        lambda: get_spec("ghost-loads"),
        lambda: make_scheme("ghost-loads"),
        lambda: estimate_area(MEGA, "ghost-loads"),
        lambda: scheme_stage_delays(MEGA, "ghost-loads"),
        lambda: estimate_power(MEGA, "ghost-loads", SimStats(cycles=1)),
    ):
        with pytest.raises(ValueError):
            call()


def test_alias_spellings_accepted():
    assert get_spec("STT_Rename").name == "stt-rename"
    assert make_scheme("delay_on_miss").name == "delay-on-miss"


def test_kwargs_schema_validation():
    scheme = make_scheme("stt-rename", split_store_taints=True)
    assert scheme.split_store_taints is True
    with pytest.raises(TypeError):
        make_scheme("stt-rename", split_store_tains=True)  # typo
    with pytest.raises(TypeError):
        make_scheme("stt-rename", split_store_taints="yes")  # wrong type
    with pytest.raises(TypeError):
        make_scheme("nda", split_store_taints=True)  # wrong scheme


def test_timing_parameters_present_for_every_scheme():
    """Every registered scheme must run through the whole timing stack:
    stage deltas with valid stage names, a positive area census, a
    finite power estimate, and a successful model synthesis."""
    stats = SimStats(cycles=1000, committed_instructions=1500,
                     fetched_instructions=1800, committed_loads=300,
                     committed_branches=200)
    for spec in iter_specs():
        for config in named_configs():
            deltas = spec.timing.stage_deltas(config)
            assert set(deltas) <= _STAGE_NAMES, spec.name
            assert isinstance(spec.timing.area_luts(config), (int, float))
            assert isinstance(spec.timing.area_ffs(config), (int, float))

            area = estimate_area(config, spec.name)
            assert area.luts > 0 and area.ffs > 0, spec.name

            delays = scheme_stage_delays(config, spec.name)
            assert all(v > 0 for v in delays.as_dict().values()), spec.name

            result = synthesize(config, spec.name)
            assert result.frequency_mhz > 0, spec.name

            power = estimate_power(config, spec.name, stats)
            assert power.total > 0, spec.name


def test_cli_choices_derive_from_registry():
    """The CLI's --scheme/--schemes options must offer exactly the
    registered names — a new registry entry is immediately reachable."""
    from repro.__main__ import build_parser

    parser = build_parser()
    checked = 0
    for action in parser._subparsers._group_actions[0].choices.values():
        for option in action._actions:
            if option.dest in ("scheme", "schemes") and option.choices:
                assert tuple(option.choices) == scheme_names(), option.dest
                checked += 1
    assert checked >= 4  # grid/serve --schemes, bench/profile --scheme


def test_wire_versions_cover_every_scheme():
    """Every spec carries a positive int wire_version, and the
    handshake map derives from the registry."""
    from repro.core.registry import iter_specs, scheme_wire_versions

    versions = scheme_wire_versions()
    for spec in iter_specs():
        assert isinstance(spec.wire_version, int)
        assert spec.wire_version >= 1
        assert versions[spec.name] == spec.wire_version
    assert set(versions) == set(scheme_names())


def test_ipc_anchors_on_grid_specs():
    """Grid schemes carry a Figure 6 anchor in (0, 1]; the dedicated
    ordering assertions live in tests/harness/test_ipc_validation.py."""
    from repro.core.registry import get_spec

    for name in grid_scheme_names():
        anchor = get_spec(name).ipc_anchor
        assert anchor is not None and 0.0 < anchor <= 1.0, name


def test_new_variants_reach_the_grid_and_wire_format():
    """fence / delay-on-miss run end-to-end: grid membership, cell
    keys, and the cluster wire round-trip."""
    from repro.harness.cluster.protocol import spec_from_wire, spec_to_wire
    from repro.harness.store import simulation_key

    for name in ("fence", "delay-on-miss"):
        assert name in grid_scheme_names()
        key = simulation_key("503.bwaves", MEGA, name)
        assert len(key) == 64
        spec = ("503.bwaves", MEGA, name, (), 1.0, 2017)
        benchmark, config, scheme, kwargs, scale, seed = spec_from_wire(
            spec_to_wire(spec)
        )
        assert scheme == name
        assert config.fingerprint() == MEGA.fingerprint()
        assert make_scheme(scheme).name == name
