"""Behavioural tests of the secure-speculation schemes.

These assert the *mechanisms* (tainting, blocking, deferral) rather
than aggregate IPC: each test constructs a situation where the paper
says a specific scheme must act, and checks the corresponding counter
or ordering property.
"""

import pytest

from repro import MEGA, OoOCore, assemble, make_scheme
from repro.core import (
    BaselineScheme,
    NDAScheme,
    STTIssueScheme,
    STTRenameScheme,
    SCHEME_NAMES,
)
from repro.core.factory import make_scheme as factory

from tests.conftest import assert_matches_reference


def _spectre_like_program():
    """A load under a slow branch feeding a dependent (transmitter) load."""
    source = """
        li   ra, 40
        li   sp, 0x1000
        li   t0, 0
    loop:
        andi t1, t0, 1023
        add  t1, t1, sp
        lw   a1, 0(t1)          # speculative producer
        slti t2, a1, 1000000
        beq  t2, zero, skip
        addi s2, s2, 1
    skip:
        andi a2, a1, 255
        add  a2, a2, sp
        lw   a3, 0(a2)          # dependent load: tainted transmitter
        add  s3, s3, a3
        addi t0, t0, 7
        addi ra, ra, -1
        bne  ra, zero, loop
        halt
    """
    program = assemble(source, name="taint-chain")
    for i in range(1024):
        program.initial_memory[0x1000 + i] = (i * 37) & 1023
    return program


def test_factory_names():
    for name in SCHEME_NAMES:
        scheme = factory(name)
        assert scheme.name == name


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        factory("ghost-loads")


def test_factory_accepts_underscores():
    assert factory("stt_rename").name == "stt-rename"
    assert factory("stt_issue").name == "stt-issue"


def test_stt_blocks_tainted_transmitters():
    program = _spectre_like_program()
    for name in ("stt-rename", "stt-issue"):
        result = OoOCore(program, config=MEGA, scheme=factory(name),
                         warm_caches=True).run()
        assert result.stats.taint_blocked_issues > 0, name
        assert result.stats.extra["loads_tainted"] > 0, name
        assert_matches_reference(program, result, name)


def test_baseline_never_blocks():
    program = _spectre_like_program()
    result = OoOCore(program, config=MEGA, warm_caches=True).run()
    assert result.stats.taint_blocked_issues == 0
    assert result.stats.deferred_broadcasts == 0


def test_stt_issue_wastes_slots_on_tainted_selects():
    program = _spectre_like_program()
    result = OoOCore(program, config=MEGA, scheme=STTIssueScheme(),
                     warm_caches=True).run()
    assert result.stats.extra["stt_issue_nops"] > 0
    assert result.stats.wasted_issue_slots >= result.stats.extra["stt_issue_nops"]


def test_nda_defers_speculative_broadcasts():
    program = _spectre_like_program()
    result = OoOCore(program, config=MEGA, scheme=NDAScheme(),
                     warm_caches=True).run()
    assert result.stats.deferred_broadcasts > 0
    assert result.stats.deferred_broadcast_cycles > 0
    assert_matches_reference(program, result, "nda")


def test_nda_release_skips_superseded_committed_load():
    """A committed load whose architectural mapping has since moved on
    (a younger same-register writer committed) must not broadcast: its
    physical register is free — possibly reallocated to a younger
    in-flight uop — and no live consumer can still name it."""
    from repro.isa.instructions import Instruction, Opcode
    from repro.pipeline.regfile import NOT_READY, READY
    from repro.pipeline.uop import MicroOp

    core = OoOCore(_spectre_like_program(), config=MEGA,
                   scheme=factory("nda"))
    scheme = core.scheme
    load = MicroOp(0, 0, Instruction(Opcode.LW, rd=5, rs1=1, imm=0))
    load.prd = 40
    load.committed = True
    load.complete_cycle = 3

    core.rename.arch_rat[5] = 41  # a younger writer committed
    core.prf.state[40] = NOT_READY
    scheme._release(load, 10)
    assert core.prf.state[40] == NOT_READY, "dead broadcast fired"

    core.rename.arch_rat[5] = 40  # still the live mapping: release
    scheme._release(load, 10)
    assert core.prf.state[40] == READY


def test_nda_disables_spec_hit_wakeup():
    assert NDAScheme().allows_spec_hit_wakeup is False
    assert STTRenameScheme().allows_spec_hit_wakeup is True
    assert BaselineScheme().allows_spec_hit_wakeup is True


def test_taint_checkpoint_flags():
    assert STTRenameScheme().uses_taint_checkpoints is True
    assert STTIssueScheme().uses_taint_checkpoints is False
    assert NDAScheme().uses_taint_checkpoints is False


def test_stt_issue_taints_fewer_loads_than_rename():
    """Section 4.3 advantage (1): issue-time taint checks are more
    precise than rename-time, so fewer destinations get tainted."""
    program = _spectre_like_program()
    rename = OoOCore(program, config=MEGA, scheme=STTRenameScheme(),
                     warm_caches=True).run()
    issue = OoOCore(program, config=MEGA, scheme=STTIssueScheme(),
                    warm_caches=True).run()
    assert issue.stats.extra["loads_tainted"] <= rename.stats.extra["loads_tainted"]


def test_schemes_never_change_architectural_results(scheme_name):
    program = _spectre_like_program()
    result = OoOCore(program, config=MEGA, scheme=factory(scheme_name),
                     warm_caches=True).run()
    assert_matches_reference(program, result, scheme_name)


def test_fence_blocks_all_transmitters():
    """The delay-all baseline: speculative loads simply wait, so it
    blocks strictly more than STT, taints nothing, and brackets every
    other scheme's IPC from below."""
    program = _spectre_like_program()
    fence = OoOCore(program, config=MEGA, scheme=factory("fence"),
                    warm_caches=True).run()
    stt = OoOCore(program, config=MEGA, scheme=factory("stt-issue"),
                  warm_caches=True).run()
    assert fence.stats.taint_blocked_issues > 0
    assert fence.stats.taint_blocked_issues >= stt.stats.taint_blocked_issues
    assert fence.ipc <= stt.ipc
    assert "loads_tainted" not in fence.stats.extra
    assert_matches_reference(program, fence, "fence")


def test_fence_loads_only_narrows_the_mask():
    """``fence(loads_only=True)``: the Spectre-v1-only conservative
    point.  Only loads wait for bound-to-commit; store address
    generation, branches, and jumps issue freely — so it blocks
    strictly fewer issues and recovers IPC over the full fence, while
    still delaying the dependent-load transmitter."""
    program = _spectre_like_program()
    full = OoOCore(program, config=MEGA, scheme=factory("fence"),
                   warm_caches=True).run()
    narrowed = OoOCore(program, config=MEGA,
                       scheme=factory("fence", loads_only=True),
                       warm_caches=True).run()
    assert narrowed.stats.taint_blocked_issues > 0  # loads still fenced
    assert (narrowed.stats.taint_blocked_issues
            < full.stats.taint_blocked_issues)
    assert narrowed.ipc >= full.ipc
    assert_matches_reference(program, narrowed, "fence loads_only")


def test_fence_loads_only_is_a_registry_kwarg():
    """Wired like any registry kwarg: schema-validated construction,
    distinct store keys, and cluster wire round-trip."""
    from repro.core.registry import get_spec
    from repro.harness.cluster.protocol import spec_from_wire, spec_to_wire
    from repro.harness.store import simulation_key

    schema = get_spec("fence").kwargs
    assert schema["loads_only"].type is bool
    assert schema["loads_only"].default is False
    with pytest.raises(TypeError):
        factory("fence", loads_only="yes")
    with pytest.raises(TypeError):
        factory("fence", load_only=True)  # typo'ed name fails fast

    scheme = factory("fence", loads_only=True)
    assert scheme.loads_only is True
    assert factory("fence").loads_only is False

    plain = simulation_key("503.bwaves", MEGA, "fence")
    narrowed = simulation_key("503.bwaves", MEGA, "fence",
                              scheme_kwargs={"loads_only": True})
    assert plain != narrowed  # different point, different cell

    spec = ("503.bwaves", MEGA, "fence", (("loads_only", True),), 1.0, 2017)
    roundtrip = spec_from_wire(spec_to_wire(spec))
    assert roundtrip[3] == (("loads_only", True),)


def test_fence_keeps_fast_forward_unvetoed():
    """Fence has no per-cycle state: no visibility hook, no booked
    wakes, so miss-heavy idle windows still fast-forward."""
    from repro.workloads.kernels import chase_kernel

    program = chase_kernel(iterations=48, ring_words=64)
    core = OoOCore(program, config=MEGA, scheme=factory("fence"))
    core.run()
    assert core.ff_skipped_cycles > 0


def _shadowed_miss_program():
    """A slow guard load keeps its branch shadow open while a second,
    independent load misses and completes underneath it — the one case
    delay-on-miss must still defer."""
    source = """
        li   ra, 48
        li   sp, 0x1000
        li   gp, 0x40000
        li   t0, 0
    loop:
        add  t1, t0, sp
        lw   a1, 0(t1)          # guard load: misses, slow
        slti t2, a1, 1000000
        beq  t2, zero, skip     # branch resolves only when a1 returns
        addi s2, s2, 1
    skip:
        add  a2, t0, gp
        lw   a3, 0(a2)          # independent miss under the shadow
        add  s3, s3, a3
        addi t0, t0, 128
        addi ra, ra, -1
        bne  ra, zero, loop
        halt
    """
    program = assemble(source, name="dom-shadowed-miss")
    for i in range(0, 48 * 128 + 4, 4):
        program.initial_memory[0x1000 + i] = i & 255
        program.initial_memory[0x40000 + i] = (i * 7) & 255
    return program


def test_delay_on_miss_defers_only_misses():
    """Selective delay: still defers shadowed misses, but far fewer
    broadcasts than NDA (hits and post-resolution misses run free), and
    recovers IPC accordingly."""
    program = _shadowed_miss_program()
    nda = OoOCore(program, config=MEGA, scheme=factory("nda")).run()
    dom = OoOCore(program, config=MEGA, scheme=factory("delay-on-miss")).run()
    assert 0 < dom.stats.deferred_broadcasts < nda.stats.deferred_broadcasts
    assert dom.stats.extra["dom_deferred"] == dom.stats.deferred_broadcasts
    assert dom.ipc >= nda.ipc
    assert_matches_reference(program, dom, "delay-on-miss")


def test_delay_on_miss_warm_hits_never_defer():
    """With every access an on-core hit there is nothing to delay."""
    from repro.workloads.kernels import streaming_kernel

    program = streaming_kernel(iterations=40, array_words=64)
    # Warm the L1 itself so no access misses.
    core = OoOCore(program, config=MEGA, scheme=factory("delay-on-miss"))
    core.hierarchy.warm(program.initial_memory.keys(), level="l1")
    result = core.run()
    assert result.stats.deferred_broadcasts == 0


def test_split_store_taints_reduce_violations():
    """Section 9.2's proposed STT-Rename fix."""
    from repro.workloads.kernels import forwarding_kernel

    program = forwarding_kernel(iterations=120)
    unified = OoOCore(program, config=MEGA,
                      scheme=STTRenameScheme(split_store_taints=False)).run()
    split = OoOCore(program, config=MEGA,
                    scheme=STTRenameScheme(split_store_taints=True)).run()
    assert split.stats.stl_forward_errors < unified.stats.stl_forward_errors
    assert split.stats.ipc > unified.stats.ipc
    assert_matches_reference(program, split, "split-taints")
