"""Security verification (Section 7): Spectre v1 across the schemes.

These are the repository's most important tests: the unsafe baseline
MUST leak (otherwise the attack harness is broken and the scheme tests
prove nothing), and every secure scheme MUST block the leak.
"""

import pytest

from repro import MEGA, LARGE
from repro.attacks import build_spectre_program, run_spectre_v1
from repro.attacks.covert_channel import CacheProbe
from repro.attacks.spectre_v1 import DUMMY_VALUE


def test_baseline_leaks_the_secret():
    outcome = run_spectre_v1("baseline", secret=42)
    assert outcome.leaked
    assert outcome.observed == (42,)


@pytest.mark.parametrize("scheme", ["stt-rename", "stt-issue", "nda"])
def test_schemes_block_the_leak(scheme):
    outcome = run_spectre_v1(scheme, secret=42)
    assert not outcome.leaked, "%s leaked %s" % (scheme, outcome.observed)
    assert outcome.observed == ()


@pytest.mark.parametrize("secret", [7, 23, 55])
def test_leak_tracks_the_secret_value(secret):
    outcome = run_spectre_v1("baseline", secret=secret)
    assert outcome.leaked
    assert outcome.observed == (secret,)


def test_attack_works_on_other_configs():
    outcome = run_spectre_v1("baseline", config=LARGE, secret=33)
    assert outcome.leaked
    blocked = run_spectre_v1("stt-issue", config=LARGE, secret=33)
    assert not blocked.leaked


def test_split_store_taints_still_secure():
    """The Section 9.2 optimisation must not weaken STT-Rename."""
    from repro.core.stt_rename import STTRenameScheme
    from repro.pipeline.core import OoOCore
    from repro.attacks.spectre_v1 import build_spectre_program

    program, probe = build_spectre_program(secret=42)
    core = OoOCore(program, config=MEGA,
                   scheme=STTRenameScheme(split_store_taints=True))
    core.run()
    measurement = probe.measure(core.hierarchy, level="any")
    assert 42 not in measurement.hot_values


def test_program_rejects_masked_secret():
    with pytest.raises(ValueError):
        build_spectre_program(secret=DUMMY_VALUE)
    with pytest.raises(ValueError):
        build_spectre_program(secret=64)


def test_probe_addressing():
    probe = CacheProbe(0x1000, stride=8, candidates=range(4))
    assert probe.address_for(0) == 0x1000
    assert probe.address_for(3) == 0x1000 + 24


def test_probe_levels():
    from repro.memsys.hierarchy import MemoryHierarchy

    hierarchy = MemoryHierarchy()
    probe = CacheProbe(0x1000, candidates=range(4))
    hierarchy.l2.insert(probe.address_for(2))
    assert probe.measure(hierarchy, level="l1").hot_values == ()
    assert probe.measure(hierarchy, level="l2").hot_values == (2,)
    assert probe.measure(hierarchy, level="any").hot_values == (2,)
    with pytest.raises(ValueError):
        probe.measure(hierarchy, level="l3")
