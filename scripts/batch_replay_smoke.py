#!/usr/bin/env python
"""Batch-replay equivalence smoke: the fast path cannot drift.

Runs the canonical throughput suite twice per scheme — batch replay on
(the default) and forced off via ``REPRO_NO_BATCH_REPLAY`` semantics
(``OoOCore(batch_replay=False)``) — and asserts the simulated machine
is identical: same cycles, same committed instructions, same full
``to_dict()`` snapshot per workload.  Batch replay is a host-side
optimisation of *when Python completes the uops*, never of what the
simulated pipeline does; this smoke keeps that invariant pinned at
bench scale so the kernel step can never diverge from the stepping
path unnoticed.

Also asserts engagement: across the suite the batch path must actually
fire (non-zero batch events under the default scheme set), so the
equivalence cannot pass vacuously with batching disabled by accident.

Usage::

    PYTHONPATH=src python scripts/batch_replay_smoke.py [--scale 0.1]
"""

import argparse
import sys

from repro.core.factory import make_scheme
from repro.harness.bench import throughput_suite
from repro.isa.trace import record_trace
from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore

SCHEMES = ("baseline", "stt-rename", "nda", "fence", "delay-on-miss")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="suite iteration multiplier (default 0.1)")
    args = parser.parse_args(argv)

    suite = throughput_suite(scale=args.scale)
    traces = {label: record_trace(program) for label, program, _ in suite}
    total_batch_events = 0
    checked = 0
    for scheme_name in SCHEMES:
        for label, program, warm in suite:
            runs = {}
            for batching in (True, False):
                core = OoOCore(program, config=MEGA,
                               scheme=make_scheme(scheme_name),
                               warm_caches=warm, trace=traces[label],
                               batch_replay=batching)
                result = core.run()
                if batching:
                    total_batch_events += core.replay_batch_events
                elif core.replay_batch_events:
                    print("FAIL: %s/%s ran batches with batching off"
                          % (scheme_name, label))
                    return 1
                runs[batching] = result
            on, off = runs[True], runs[False]
            if (on.cycles != off.cycles
                    or on.stats.committed_instructions
                    != off.stats.committed_instructions):
                print("FAIL: %s/%s diverged: %d/%d cycles, %d/%d instrs"
                      % (scheme_name, label, on.cycles, off.cycles,
                         on.stats.committed_instructions,
                         off.stats.committed_instructions))
                return 1
            if on.to_dict() != off.to_dict():
                print("FAIL: %s/%s full-snapshot mismatch with identical"
                      " cycle counts" % (scheme_name, label))
                return 1
            checked += 1
    if total_batch_events == 0:
        print("FAIL: batch replay never engaged across %d cells — the"
              " equivalence above is vacuous" % checked)
        return 1
    print("batch-replay smoke: %d scheme x workload cells identical"
          " on/off (%d batch events engaged)"
          % (checked, total_batch_events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
