#!/usr/bin/env python
"""Telemetry-overhead smoke: the disabled observability path is free.

Two assertions, scriptable in CI:

1. *Same machine* — an observability-enabled run (cycle accounting +
   pipeline tracing) simulates exactly the cycles and instructions of
   the plain run, per workload.  The test suite pins slot-level
   byte-identity on the golden grid; this repeats the check at bench
   scale as a crash canary.
2. *No residue* — two obs-disabled throughput passes agree within a
   tolerance (default 3%): merely importing and constructing the
   observability subsystem must not slow the disabled path down.
   Timings are best-of-N per workload and the comparison retries a few
   times, keeping the best pair, so scheduler noise cannot flake CI.

The enabled-path overhead is printed for the record but *not*
asserted — accounting does real per-cycle work and its cost is
allowed to drift.

Usage::

    PYTHONPATH=src python scripts/overhead_smoke.py [--scale 0.25]
"""

import argparse
import sys
import time

from repro.core.factory import make_scheme
from repro.harness.bench import throughput_suite
from repro.obs import CycleAccount, PipeTracer
from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore


def run_suite(suite, repeats, observed):
    """Best-of-N wall time over the suite; returns (wall, shape).

    ``shape`` is the tuple of (cycles, instructions) per workload —
    the identity the enabled path must reproduce exactly.
    """
    total = 0.0
    shape = []
    for _label, program, warm in suite:
        best = None
        for _ in range(repeats):
            sinks = {}
            if observed:
                sinks = {"account": CycleAccount(),
                         "tracer": PipeTracer(limit=1000)}
            core = OoOCore(program, config=MEGA,
                           scheme=make_scheme("baseline"),
                           warm_caches=warm, **sinks)
            start = time.perf_counter()
            result = core.run()
            wall = time.perf_counter() - start
            if best is None or wall < best:
                best = wall
        total += best
        shape.append((result.cycles, result.stats.committed_instructions))
    return total, tuple(shape)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="max fractional gap between disabled passes")
    parser.add_argument("--attempts", type=int, default=4,
                        help="noisy-pair retries before failing")
    args = parser.parse_args(argv)

    suite = list(throughput_suite(scale=args.scale))

    base_wall, base_shape = run_suite(suite, args.repeats, observed=False)
    print("pass 1 (obs off): %.3fs" % base_wall)

    best_gap = None
    for attempt in range(1, args.attempts + 1):
        wall, shape = run_suite(suite, args.repeats, observed=False)
        assert shape == base_shape, "disabled rerun diverged"
        gap = abs(wall - base_wall) / min(wall, base_wall)
        print("pass %d (obs off): %.3fs  gap %.2f%%"
              % (attempt + 1, wall, gap * 100.0))
        if best_gap is None or gap < best_gap:
            best_gap = gap
        if best_gap <= args.tolerance:
            break

    obs_wall, obs_shape = run_suite(suite, args.repeats, observed=True)
    if obs_shape != base_shape:
        print("FAIL: observability changed the simulated machine: "
              "%r != %r" % (obs_shape, base_shape), file=sys.stderr)
        return 1
    overhead = (obs_wall - base_wall) / base_wall * 100.0
    print("enabled path: %.3fs (%+.1f%% vs disabled, informational)"
          % (obs_wall, overhead))

    if best_gap > args.tolerance:
        print("FAIL: disabled passes disagree by %.2f%% (> %.0f%%) after "
              "%d attempts — the disabled path is not overhead-free"
              % (best_gap * 100.0, args.tolerance * 100.0, args.attempts),
              file=sys.stderr)
        return 1
    print("ok: disabled-path passes within %.2f%% (tolerance %.0f%%)"
          % (best_gap * 100.0, args.tolerance * 100.0))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
