#!/usr/bin/env python
"""Store-scale smoke: a 10^4-cell segment store end to end, on a clock.

Builds a synthetic campaign store (the same cells ``python -m repro
bench --store`` uses), then drives every maintenance and analysis path
a million-cell campaign depends on — ``store verify``, ``store
stats``, ``store gc``, ``compact``, bulk ``load_many``, the columnar
``metrics`` scan — and asserts each answer is correct, not just alive.
The whole run must finish inside a time budget so CI catches the exact
failure segment files were introduced to prevent: store operations
degrading from O(index) back toward O(cells x file-open).

Usage::

    PYTHONPATH=src python scripts/store_scale_smoke.py \
        [--cells 10000] [--budget 120]
"""

import argparse
import shutil
import sys
import tempfile
import time

from repro.harness.store import ResultStore
from repro.harness.storebench import synthetic_key, synthetic_result


def fail(message):
    print("FAIL: %s" % message)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=10000,
                        help="campaign size to build (default 10000)")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="wall-clock budget in seconds (default 120)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    root = tempfile.mkdtemp(prefix="store-scale-smoke-")
    laps = []

    def lap(label):
        laps.append((label, time.perf_counter() - started))

    try:
        store = ResultStore(root)
        keys = []
        for index in range(args.cells):
            key = synthetic_key(index)
            store.save(key, synthetic_result(index), {"index": index})
            keys.append(key)
        store.close()
        lap("populate")

        store = ResultStore(root)
        if len(store) != args.cells:
            return fail("len() %d != %d" % (len(store), args.cells))
        if sorted(store.keys()) != sorted(keys):
            return fail("keys() disagrees with the written campaign")
        lap("keys")

        verdict = store.verify()
        if verdict != {"scanned": args.cells, "kept": args.cells,
                       "corrupt": 0, "stale": 0}:
            return fail("verify() on a healthy store: %r" % (verdict,))
        lap("verify")

        stats = store.stats()
        if stats["cells"] != args.cells or stats["legacy_cells"]:
            return fail("stats() miscounts cells: %r" % (stats,))
        if stats["compression_ratio"] <= 1.0:
            return fail("segment compression never engaged")
        lap("stats")

        sample = keys[:: max(1, args.cells // 500)]
        loaded = store.load_many(sample)
        if len(loaded) != len(sample):
            return fail("load_many returned %d of %d cells"
                        % (len(loaded), len(sample)))
        probe = sample[len(sample) // 2]
        index = keys.index(probe)
        if loaded[probe].to_dict() != synthetic_result(index).to_dict():
            return fail("load_many round-trip drifted for cell %d" % index)
        lap("load_many")

        # The metrics hot path: a columnar full-store scan.
        cycles = 0
        rows = 0
        for row in store.iter_results(fields=("stats",)):
            cycles += row.stats.cycles
            rows += 1
        if rows != args.cells or cycles <= 0:
            return fail("columnar scan saw %d rows (want %d)"
                        % (rows, args.cells))
        lap("metrics scan")

        keep = keys[: args.cells // 2]
        summary = store.gc(keep)
        if summary["kept"] != len(keep) or summary["dropped"] != (
                args.cells - len(keep)):
            return fail("gc summary wrong: %r" % (summary,))
        if summary["bytes_reclaimed"] <= 0:
            return fail("gc dropped half the store but reclaimed 0 bytes")
        if len(store) != len(keep):
            return fail("post-gc len() %d != %d" % (len(store), len(keep)))
        if store.load(keep[0]) is None or store.load(keys[-1]) is not None:
            return fail("gc kept/dropped the wrong cells")
        lap("gc+compact")
        store.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    elapsed = time.perf_counter() - started
    previous = 0.0
    for label, mark in laps:
        print("  %-12s %6.2fs" % (label, mark - previous))
        previous = mark
    if elapsed > args.budget:
        return fail("%.1fs exceeded the %.0fs budget"
                    % (elapsed, args.budget))
    print("store-scale smoke: %d cells verified, scanned, and gc'd in"
          " %.1fs (budget %.0fs)" % (args.cells, elapsed, args.budget))
    return 0


if __name__ == "__main__":
    sys.exit(main())
