#!/usr/bin/env python3
"""Campaign engine tour: content-addressed cache, store, parallelism.

Runs a small (2 benchmarks x 2 configs x 2 schemes) grid three ways:

1. in parallel, cold, persisting every cell to a temporary store;
2. again from a fresh runner sharing the store — zero new simulations;
3. with two same-named but differently-parameterised configurations,
   showing that content-addressed keys keep their results apart (the
   bug class a name-keyed cache cannot avoid).

Run: ``python examples/campaign.py``

The same engine drives the command line::

    python -m repro grid --jobs 8
    python -m repro run figure6 --scale 0.1
"""

import tempfile

from repro.harness.runner import CampaignRunner
from repro.harness.store import ResultStore
from repro.pipeline.config import MEDIUM, MEGA

BENCHMARKS = ("503.bwaves", "548.exchange2")
SCHEMES = ("baseline", "nda")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)

        print("== cold parallel run ==")
        runner = CampaignRunner(scale=0.1, benchmarks=BENCHMARKS, store=store)
        summary = runner.run_grid(configs=(MEDIUM, MEGA), schemes=SCHEMES,
                                  jobs=4)
        print("  %(total)d cells: %(simulated)d simulated, "
              "%(from_store)d from store, %(cached)d cached" % summary)

        print("== warm run, fresh process (simulated must be 0) ==")
        rerun = CampaignRunner(scale=0.1, benchmarks=BENCHMARKS,
                               store=ResultStore(tmp))
        summary = rerun.run_grid(configs=(MEDIUM, MEGA), schemes=SCHEMES,
                                 jobs=4)
        print("  %(total)d cells: %(simulated)d simulated, "
              "%(from_store)d from store, %(cached)d cached" % summary)

        print("== same name, different parameters, distinct results ==")
        narrow = MEGA.scaled(name="custom", width=1, issue_width=1)
        wide = MEGA.scaled(name="custom")
        a = rerun.run(BENCHMARKS[0], narrow, "baseline")
        b = rerun.run(BENCHMARKS[0], wide, "baseline")
        print("  %-28s IPC %.3f" % ("custom (width 1)", a.stats.ipc))
        print("  %-28s IPC %.3f" % ("custom (width 4)", b.stats.ipc))
        assert a is not b and a.stats.cycles != b.stats.cycles


if __name__ == "__main__":
    main()
