#!/usr/bin/env python3
"""Quickstart: assemble a program, run it under every scheme.

Demonstrates the three layers of the public API:

1. ``assemble`` — write programs in readable assembly.
2. ``OoOCore`` — the cycle-level out-of-order core, parameterised by a
   BOOM-style configuration and a secure-speculation scheme.
3. ``SimulationResult`` — architectural state plus microarchitectural
   statistics.

Run: ``python examples/quickstart.py``
"""

from repro import MEGA, OoOCore, assemble, make_scheme, run_reference

PROGRAM = assemble(
    """
    # Sum array[0..63], branching on each element's parity.
        li   ra, 64          # loop counter
        li   sp, 0x1000      # array base
        li   t0, 0           # index
        li   a0, 0           # sum
        li   a1, 0           # odd-element count
    loop:
        add  t1, sp, t0
        lw   a2, 0(t1)       # load element
        add  a0, a0, a2
        andi t2, a2, 1
        beq  t2, zero, even  # data-dependent branch
        addi a1, a1, 1
    even:
        addi t0, t0, 1
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)     # publish the sum
        halt
    """,
    name="quickstart",
)
for i in range(64):
    PROGRAM.initial_memory[0x1000 + i] = (i * 37 + 5) % 101


def main():
    reference = run_reference(PROGRAM)
    print("reference result: sum = %d, odd count = %d" % (
        reference.state.read_reg(10), reference.state.read_reg(11)))
    print()
    print("%-12s %8s %8s %7s %12s %9s" % (
        "scheme", "cycles", "instrs", "IPC", "taint-blocks", "deferred"))
    for name in ("baseline", "stt-rename", "stt-issue", "nda"):
        core = OoOCore(PROGRAM, config=MEGA, scheme=make_scheme(name))
        result = core.run()
        assert result.regs[10] == reference.state.read_reg(10)
        stats = result.stats
        print("%-12s %8d %8d %7.3f %12d %9d" % (
            name, stats.cycles, stats.committed_instructions, stats.ipc,
            stats.taint_blocked_issues, stats.deferred_broadcasts))
    print()
    print("All four schemes computed identical architectural results;")
    print("only the cycle counts (and microarchitectural traffic) differ.")


if __name__ == "__main__":
    main()
