#!/usr/bin/env python3
"""Spectre v1 on the model machine: baseline leaks, schemes do not.

Reproduces the paper's Section 7 security verification: a bounds-check
bypass gadget is trained, the size load is evicted to open a ~90-cycle
speculation window, and a transient out-of-bounds load transmits the
secret through a cache covert channel.  The receiver then probes which
cache lines became resident.

Run: ``python examples/spectre_attack.py``
"""

from repro.attacks import run_spectre_v1

SECRET = 42


def main():
    print("Spectre v1 bounds-check bypass, secret value = %d" % SECRET)
    print()
    for scheme in ("baseline", "stt-rename", "stt-issue", "nda"):
        outcome = run_spectre_v1(scheme, secret=SECRET)
        if outcome.leaked:
            verdict = "LEAKED  -> probe observed %s" % (outcome.observed,)
        elif outcome.observed:
            verdict = "noisy   -> probe observed %s (not the secret)" % (
                outcome.observed,)
        else:
            verdict = "blocked -> probe stayed cold"
        print("  %-11s %s" % (scheme, verdict))
        print("              %s" % outcome.stats_summary)
    print()
    print("The unsafe baseline transmits the secret into the cache; all")
    print("three secure schemes keep the probe array cold, at the IPC")
    print("costs quantified by the benchmark harness.")


if __name__ == "__main__":
    main()
