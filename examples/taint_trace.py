#!/usr/bin/env python3
"""Watch STT taints flow: a load under a branch shadow taints its
consumers, transmitters block, and untaint broadcasts release them.

Instruments a tiny program and prints, per scheme, the taint and
blocking counters alongside a cycle-by-cycle view of when the
dependent (transmitter) load was allowed to execute.

Run: ``python examples/taint_trace.py``
"""

from repro import MEGA, OoOCore, assemble, make_scheme

PROGRAM = assemble(
    """
    # One iteration of a Spectre-shaped dependence chain:
    #   slow branch -> speculative load -> dependent transmitter load.
        li   ra, 30
        li   sp, 0x1000
        li   t0, 0
    loop:
        add  t1, sp, t0
        lw   a1, 0(t1)       # producer load (speculative under shadow)
        slti t2, a1, 4096
        beq  t2, zero, skip  # branch waits on the loaded value
        addi s2, s2, 1
    skip:
        andi a2, a1, 63
        add  a2, a2, sp
        lw   a3, 0(a2)       # dependent load: a tainted transmitter
        add  s3, s3, a3
        addi t0, t0, 3
        addi ra, ra, -1
        bne  ra, zero, loop
        halt
    """,
    name="taint-trace",
)
for i in range(256):
    PROGRAM.initial_memory[0x1000 + i] = (i * 97) % 1999


def main():
    print("%-12s %7s %13s %13s %11s %9s" % (
        "scheme", "cycles", "loads tainted", "taint blocks",
        "STT-I nops", "deferred"))
    for name in ("baseline", "stt-rename", "stt-issue", "nda"):
        core = OoOCore(PROGRAM, config=MEGA, scheme=make_scheme(name),
                       warm_caches=True)
        result = core.run()
        stats = result.stats
        print("%-12s %7d %13d %13d %11d %9d" % (
            name,
            stats.cycles,
            stats.extra.get("loads_tainted", 0),
            stats.taint_blocked_issues,
            stats.extra.get("stt_issue_nops", 0),
            stats.deferred_broadcasts,
        ))
    print()
    print("Reading the columns:")
    print(" * STT-Rename taints conservatively at rename and blocks the")
    print("   dependent load until the untaint broadcast (+1 cycle lag).")
    print(" * STT-Issue taints at select time: fewer loads tainted, and")
    print("   each blocked transmitter first burns one issue slot (nop).")
    print(" * NDA never blocks execution — it defers the producer's")
    print("   broadcast, so the whole dependence chain starts late.")


if __name__ == "__main__":
    main()
