#!/usr/bin/env python3
"""Scheme comparison across core sizes on characteristic workloads.

Sweeps three hand-written kernels — streaming (scheme-friendly),
pointer chase (latency-bound), and tight store/load forwarding (the
exchange2 pattern) — across the four BOOM configurations, printing
normalized IPC per scheme.  Shows in miniature what the full harness
measures on the 22-benchmark proxy suite.

Run: ``python examples/scheme_comparison.py``
"""

from repro import OoOCore, make_scheme, named_configs
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    streaming_kernel,
)

SCHEMES = ("stt-rename", "stt-issue", "nda")


def run(program, config, scheme):
    core = OoOCore(program, config=config, scheme=make_scheme(scheme),
                   warm_caches=True)
    return core.run()


def main():
    kernels = [
        ("streaming", streaming_kernel(iterations=150)),
        ("pointer-chase", chase_kernel(iterations=80, ring_words=512)),
        ("forwarding", forwarding_kernel(iterations=150)),
    ]
    for label, program in kernels:
        print("== %s kernel ==" % label)
        print("%-8s %9s  %s" % ("config", "base IPC",
                                "  ".join("%-10s" % s for s in SCHEMES)))
        for config in named_configs():
            base = run(program, config, "baseline")
            cells = []
            for scheme in SCHEMES:
                result = run(program, config, scheme)
                cells.append("%-10.3f" % (result.stats.ipc / base.stats.ipc))
            print("%-8s %9.3f  %s" % (config.name, base.stats.ipc,
                                      "  ".join(cells)))
        print()
    print("Note the forwarding kernel: STT-Rename collapses (unified")
    print("store taints block address generation -> ordering flushes)")
    print("while STT-Issue and NDA stay near baseline — Section 9.2.")


if __name__ == "__main__":
    main()
