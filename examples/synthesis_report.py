#!/usr/bin/env python3
"""Synthesis-substitute report: timing closure, area, and power.

Prints, for each BOOM configuration, the model's achieved frequency
and critical pipeline stage per scheme (Figure 9), and the Mega
configuration's area/power table (Table 4).

Run: ``python examples/synthesis_report.py``
"""

from repro.pipeline.config import MEGA, named_configs
from repro.pipeline.stats import SimStats
from repro.timing import estimate_area, estimate_power, synthesize

SCHEMES = ("baseline", "stt-rename", "stt-issue", "nda")


def main():
    print("Timing closure (achieved MHz, critical stage):")
    for config in named_configs():
        cells = []
        for scheme in SCHEMES:
            result = synthesize(config, scheme)
            cells.append("%s %.1f MHz (%s)" % (
                scheme, result.frequency_mhz, result.critical_stage))
        print("  %-7s %s" % (config.name, " | ".join(cells)))
    print()

    print("Area at Mega, normalized to baseline:")
    base_area = estimate_area(MEGA, "baseline")
    for scheme in SCHEMES[1:]:
        area = estimate_area(MEGA, scheme)
        luts, ffs = area.relative_to(base_area)
        print("  %-11s LUTs %.3f  FFs %.3f" % (scheme, luts, ffs))
    print()

    print("Power at Mega (activity measured from a mixed kernel):")
    from repro import OoOCore, make_scheme
    from repro.workloads.generator import WorkloadProfile, generate_program

    program = generate_program(
        WorkloadProfile(name="power-ref", iterations=64), seed=11
    )
    base_stats = OoOCore(program, config=MEGA, warm_caches=True).run().stats
    base_power = estimate_power(MEGA, "baseline", base_stats)
    for scheme in SCHEMES[1:]:
        stats = OoOCore(program, config=MEGA, scheme=make_scheme(scheme),
                        warm_caches=True).run().stats
        power = estimate_power(MEGA, scheme, stats)
        print("  %-11s %.3f x baseline" % (scheme, power.relative_to(base_power)))
    print()
    print("STT-Rename loses its frequency in the rename stage (the YRoT")
    print("chain); STT-Issue in the issue stage (taint unit); NDA clocks")
    print("at or above baseline by dropping speculative-hit scheduling.")


if __name__ == "__main__":
    main()
